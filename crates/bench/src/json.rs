//! A minimal recursive-descent JSON reader for the crate's own artifacts.
//!
//! The workspace serializes every artifact by hand (no external deps);
//! this is the matching reader, used by the `audit` regression gate to
//! load `BENCH_trajectory.json` snapshots back. It parses the full JSON
//! grammar the artifacts use — objects, arrays, strings, integers,
//! floats, booleans, null — with byte offsets in error messages. It is
//! not a general-purpose parser: numbers outside `f64`/`u64` range and
//! `\uXXXX` escapes beyond the BMP are out of scope.

use std::collections::BTreeMap;

/// Escapes a string for embedding in a JSON document.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, kept as `f64` (artifact integers fit exactly).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is not preserved (artifact readers look
    /// fields up by name).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Parses a complete JSON document (surrounding whitespace allowed).
    ///
    /// # Errors
    ///
    /// A message naming the byte offset of the first syntax error.
    pub fn parse(input: &str) -> Result<Value, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// The object's field `key`, if this is an object containing it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, what: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&what) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", what as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        _ => Err(format!("expected a value at byte {}", *pos)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected {word:?} at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let text = core::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| format!("malformed number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(format!("unterminated string at byte {}", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let escaped = bytes
                    .get(*pos)
                    .ok_or_else(|| format!("unterminated escape at byte {}", *pos))?;
                *pos += 1;
                match escaped {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| core::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("truncated \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?} at byte {}", *pos))?;
                        *pos += 4;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("non-BMP \\u escape at byte {}", *pos))?,
                        );
                    }
                    other => {
                        return Err(format!(
                            "unknown escape \\{} at byte {}",
                            *other as char,
                            *pos - 1
                        ))
                    }
                }
            }
            Some(_) => {
                // Consume one UTF-8 character (multi-byte sequences pass
                // through unchanged).
                let rest = core::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {}", *pos))?;
                let ch = rest.chars().next().expect("nonempty checked above");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Value;

    #[test]
    fn parses_nested_artifacts() {
        let doc =
            r#"{"schema": 1, "rows": [{"n": 16, "ok": true, "x": -2.5, "tag": "a\"b"}, null]}"#;
        let v = Value::parse(doc).unwrap();
        assert_eq!(v.get("schema").and_then(Value::as_u64), Some(1));
        let rows = v.get("rows").and_then(Value::as_array).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("n").and_then(Value::as_u64), Some(16));
        assert_eq!(rows[0].get("ok"), Some(&Value::Bool(true)));
        assert_eq!(rows[0].get("x").and_then(Value::as_f64), Some(-2.5));
        assert_eq!(rows[0].get("tag").and_then(Value::as_str), Some("a\"b"));
        assert_eq!(rows[1], Value::Null);
    }

    #[test]
    fn rejects_malformed_documents_with_offsets() {
        for (doc, fragment) in [
            ("{", "expected '\"'"),
            ("[1, 2", "expected ',' or ']'"),
            ("{\"a\" 1}", "expected ':'"),
            ("\"unterminated", "unterminated string"),
            ("1 trailing", "trailing content"),
            ("tru", "expected \"true\""),
        ] {
            let err = Value::parse(doc).unwrap_err();
            assert!(err.contains(fragment), "{doc:?}: {err}");
            assert!(err.contains("byte"), "{doc:?}: {err}");
        }
    }

    #[test]
    fn u64_accessor_rejects_fractions_and_negatives() {
        assert_eq!(Value::parse("3.5").unwrap().as_u64(), None);
        assert_eq!(Value::parse("-3").unwrap().as_u64(), None);
        assert_eq!(Value::parse("42").unwrap().as_u64(), Some(42));
    }
}
