//! # anonring-bench
//!
//! The experiment harness: one runner per experiment of DESIGN.md's
//! per-experiment index (E1–E18), each producing a paper-bound-versus-
//! measured table. `cargo run --release -p anonring-bench --bin
//! experiments` regenerates every table; EXPERIMENTS.md records the
//! outputs.
//!
//! The paper being a theory paper, its "tables and figures" are the
//! complexity bounds of §4–§7; every experiment here measures a real
//! simulator run against the corresponding closed-form bound.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ablations;
pub mod arbitrary;
pub mod audit;
pub mod cluster;
pub mod dynamic;
pub mod json;
pub mod labeled;
pub mod load;
pub mod lower_async;
pub mod lower_sync;
pub mod microbench;
pub mod ringd;
pub mod sweep;
pub mod table;
pub mod telemetry_runs;
pub mod upper;

pub use table::{CellMetrics, Table};

/// A nullary experiment entry point producing a result table.
pub type ExperimentRunner = fn() -> Table;

/// Every experiment as an (id, runner) pair, in DESIGN.md order.
#[must_use]
pub fn experiment_runners() -> Vec<(&'static str, ExperimentRunner)> {
    vec![
        ("E1", upper::e01_async_input_distribution),
        ("E2", upper::e02_sync_and),
        ("E3", upper::e03_sync_input_distribution),
        ("E4", upper::e04_orientation),
        ("E5", upper::e05_start_sync),
        ("E6", upper::e06_start_sync_bits),
        ("E7", lower_async::e07_and_lower_bound),
        ("E8", lower_async::e08_orientation_lower_bound),
        ("E9", lower_async::e09_random_functions),
        ("E10", lower_sync::e10_xor_lower_bound),
        ("E11", lower_sync::e11_orientation_lower_bound),
        ("E12", lower_sync::e12_start_sync_lower_bound),
        ("E13", lower_sync::e13_random_sync_functions),
        ("E14", arbitrary::e14_xor_arbitrary_n),
        ("E15", arbitrary::e15_orientation_arbitrary_n),
        ("E16", arbitrary::e16_start_sync_arbitrary_n),
        ("E17", upper::e17_bits_vs_time),
        ("E18", labeled::e18_labeled_vs_anonymous),
        ("E19", ablations::e19_elimination_rounds),
        ("E20", ablations::e20_bound_tightness),
        ("E21", ablations::e21_scheduler_robustness),
        ("E22", ablations::e22_bits_time_frontier),
        ("E23", dynamic::e23_dyn_broadcast),
    ]
}
