//! Recorded telemetry runs for the experiment harness.
//!
//! Each helper replays one representative cell of an experiment grid with
//! the full observability stack attached — [`Telemetry`] for the metrics
//! snapshot and [`FlightRecorder`] for the event stream, fanned out over
//! one run — and returns the serialized artifacts. The `experiments`
//! binary writes them as `TELEMETRY_<id>.jsonl` / `.metrics.json`; the
//! `tracer` binary replays the JSONL offline.

use anonring_core::algorithms::async_input_dist::AsyncInputDist;
use anonring_core::algorithms::sync_input_dist::SyncInputDist;
use anonring_sim::r#async::{AsyncEngine, SynchronizingScheduler};
use anonring_sim::runtime::FanOut;
use anonring_sim::sync::SyncEngine;
use anonring_sim::telemetry::{FlightRecorder, Telemetry};
use anonring_sim::RingConfig;

/// The serialized outputs of one recorded run.
#[derive(Debug, Clone)]
pub struct TelemetryArtifacts {
    /// Experiment id the run belongs to (e.g. `"E1"`).
    pub id: &'static str,
    /// JSONL flight-recorder stream (meta line + one line per event).
    pub events_jsonl: String,
    /// Metrics-registry snapshot as JSON.
    pub metrics_json: String,
    /// Total messages of the run (for log lines).
    pub messages: u64,
}

fn mixed_bits(n: usize) -> Vec<u8> {
    // Deterministic, aperiodic-ish bit pattern (same multiplier as the
    // in-crate workload generators).
    (0..n).map(|i| ((i * 2654435761) >> 7 & 1) as u8).collect()
}

/// Records one E1 cell: §4.1 asynchronous input distribution on an
/// oriented ring under the synchronizing adversary.
#[must_use]
pub fn record_e1(n: usize) -> TelemetryArtifacts {
    let config = RingConfig::oriented(mixed_bits(n));
    let mut telemetry = Telemetry::new(n);
    let mut recorder =
        FlightRecorder::new(n, format!("E1 async_input_dist n={n}")).with_engine("sim-async");
    let mut engine = AsyncEngine::from_config(&config, |_, &input| AsyncInputDist::new(n, input));
    {
        let mut fan = FanOut::new().with(&mut telemetry).with(&mut recorder);
        engine
            .run_with_observer(&mut SynchronizingScheduler, &mut fan)
            .expect("E1 run");
    }
    TelemetryArtifacts {
        id: "E1",
        events_jsonl: recorder.to_jsonl(),
        metrics_json: telemetry.registry().to_json(),
        messages: telemetry.messages(),
    }
}

/// Records one E3 cell: Fig. 2 synchronous input distribution.
#[must_use]
pub fn record_e3(n: usize) -> TelemetryArtifacts {
    let config = RingConfig::oriented(mixed_bits(n));
    let mut telemetry = Telemetry::new(n);
    let mut recorder =
        FlightRecorder::new(n, format!("E3 sync_input_dist n={n}")).with_engine("sim-sync");
    let mut engine = SyncEngine::from_config(&config, |_, &input| SyncInputDist::new(n, input));
    {
        let mut fan = FanOut::new().with(&mut telemetry).with(&mut recorder);
        engine.run_with_observer(&mut fan).expect("E3 run");
    }
    TelemetryArtifacts {
        id: "E3",
        events_jsonl: recorder.to_jsonl(),
        metrics_json: telemetry.registry().to_json(),
        messages: telemetry.messages(),
    }
}

/// The artifacts the `experiments` binary writes, in id order.
#[must_use]
pub fn default_artifacts() -> Vec<TelemetryArtifacts> {
    vec![record_e1(16), record_e3(27)]
}

#[cfg(test)]
mod tests {
    use super::{record_e1, record_e3};
    use anonring_sim::telemetry::{Recording, ReplayEvent};

    #[test]
    fn e1_artifacts_replay_and_match_the_paper_count() {
        let artifacts = record_e1(9);
        // §4.1 costs exactly n(n−1) messages.
        assert_eq!(artifacts.messages, 9 * 8);
        let recording = Recording::parse_jsonl(&artifacts.events_jsonl).unwrap();
        assert_eq!(recording.n, 9);
        assert_eq!(recording.messages(), 9 * 8);
        assert_eq!(recording.to_jsonl(), artifacts.events_jsonl);
        // Every send carries a span: n "scatter" sends plus forwards.
        let profile = recording.phase_profile();
        assert!(profile.iter().all(|((phase, _), _)| !phase.is_empty()));
        let scatter: u64 = profile
            .iter()
            .filter(|((phase, _), _)| phase == "scatter")
            .map(|(_, (msgs, _))| msgs)
            .sum();
        assert_eq!(scatter, 2 * 9);
        assert!(artifacts
            .metrics_json
            .contains("\"name\": \"messages_total\""));
    }

    #[test]
    fn e3_artifacts_cover_all_three_phases() {
        let artifacts = record_e3(8);
        let recording = Recording::parse_jsonl(&artifacts.events_jsonl).unwrap();
        let phases: std::collections::BTreeSet<String> = recording
            .events
            .iter()
            .filter_map(|e| match e {
                ReplayEvent::Send { phase, .. } => phase.clone(),
                _ => None,
            })
            .collect();
        assert!(phases.contains("labels"), "{phases:?}");
        assert!(phases.contains("broadcast"), "{phases:?}");
        assert!(artifacts.metrics_json.contains("span_messages"));
    }
}
