//! Ablations and robustness studies (E19–E22): quantifying the design
//! choices DESIGN.md calls out.

use anonring_core::algorithms::sync_input_dist::SyncInputDist;
use anonring_core::algorithms::time_encoding::TimeEncoded;
use anonring_core::algorithms::{alternating, async_input_dist, sync_input_dist};
use anonring_core::bounds;
use anonring_core::lower_bounds::witnesses::xor_sync_pair;
use anonring_sim::r#async::{
    FifoScheduler, LifoScheduler, LinkStarvingScheduler, RandomScheduler, Scheduler,
    SynchronizingScheduler,
};
use anonring_sim::sync::SyncEngine;
use anonring_sim::{Orientation, Port, RingConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::table::{f, Table};

/// E19: how fast does Figure 2's elimination actually converge? The
/// paper proves at least a third of the candidates retire per round
/// (rounds ≤ log₁.₅ n); measured round counts are far smaller on random
/// inputs and largest on crafted near-symmetric ones.
#[must_use]
pub fn e19_elimination_rounds() -> Table {
    let mut t = Table::new(
        "E19",
        "ablation: Figure 2 round counts vs the log₁.₅ n guarantee",
        &[
            "n",
            "inputs",
            "rounds (observed)",
            "log₁.₅ n bound",
            "messages",
        ],
    );
    let mut rng = StdRng::seed_from_u64(19);
    let mut ok = true;
    for n in [27usize, 81, 243, 500] {
        for (label, inputs) in [
            (
                "random",
                (0..n).map(|_| rng.gen_range(0..=1)).collect::<Vec<u8>>(),
            ),
            ("all equal", vec![1u8; n]),
            ("single one", (0..n).map(|i| u8::from(i == 0)).collect()),
            ("period 3", (0..n).map(|i| u8::from(i % 3 == 0)).collect()),
        ] {
            let config = RingConfig::oriented(inputs);
            let report = sync_input_dist::run(&config).unwrap();
            // Round length is 2(n+1); the final broadcast adds < n+1.
            let rounds = report.cycles / (2 * n as u64 + 2);
            let bound = bounds::log_base(n as f64, 1.5) + 2.0;
            ok &= (rounds as f64) <= bound;
            t.push(vec![
                n.to_string(),
                label.into(),
                rounds.to_string(),
                format!("{bound:.1}"),
                report.messages.to_string(),
            ]);
        }
    }
    t.set_verdict(if ok {
        "observed rounds never exceed the guarantee; symmetric inputs terminate via the \
         deadlock detector in O(1) rounds — symmetry is cheap to *detect*, expensive to *break*"
    } else {
        "VIOLATION"
    });
    t
}

/// E20: bound tightness — for XOR at n = 3ᵏ, compare the paper's closed
/// form, the claimed β sum, the *measured-β* sum (the best Theorem 6.2
/// certifies), and the actual algorithm cost.
#[must_use]
pub fn e20_bound_tightness() -> Table {
    let mut t = Table::new(
        "E20",
        "ablation: how much slack between Ω(n log n) certificates and the O(n log n) algorithm",
        &[
            "n",
            "paper closed form",
            "claimed Σβ/2",
            "measured Σβ/2",
            "algorithm cost",
        ],
    );
    for k in [3usize, 4, 5] {
        let pair = xor_sync_pair(k);
        let n = pair.r1.n() as u64;
        let claimed = pair.bound();
        let measured_beta = pair.clone().with_measured_beta().bound();
        let cost = sync_input_dist::run(&pair.r1).unwrap().messages;
        t.push(vec![
            n.to_string(),
            f(bounds::xor_sync_lower(n)),
            f(claimed),
            f(measured_beta),
            cost.to_string(),
        ]);
    }
    t.set_verdict(
        "closed form ≤ claimed ≤ measured certificate ≤ algorithm cost: the certificates are \
         valid at every level, with constant-factor (not asymptotic) slack",
    );
    t
}

/// E21: scheduler robustness — §4.1 input distribution sends *exactly*
/// `n(n−1)` messages under every adversary, because its control flow is
/// schedule-oblivious.
#[must_use]
pub fn e21_scheduler_robustness() -> Table {
    let mut t = Table::new(
        "E21",
        "ablation: §4.1 message count under five message adversaries",
        &[
            "n",
            "synchronizing",
            "fifo",
            "lifo",
            "random",
            "link-starving",
        ],
    );
    let mut ok = true;
    for n in [8usize, 21, 64] {
        let inputs: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
        let orientations: Vec<Orientation> = (0..n)
            .map(|i| Orientation::from_bit(((i * 7) % 3 == 0) as u8))
            .collect();
        let config = RingConfig::new(inputs, orientations).unwrap();
        let mut row = vec![n.to_string()];
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(SynchronizingScheduler),
            Box::new(FifoScheduler),
            Box::new(LifoScheduler),
            Box::new(RandomScheduler::new(21)),
            Box::new(LinkStarvingScheduler::new(0, Port::Left)),
        ];
        let expected = (n * (n - 1)) as u64;
        for sched in &mut schedulers {
            let report = async_input_dist::run(&config, sched.as_mut()).unwrap();
            ok &= report.messages == expected;
            row.push(report.messages.to_string());
        }
        t.push(row);
    }
    t.set_verdict(if ok {
        "identical counts under every adversary — the asynchronous cost is input-determined, \
         which is exactly why the Θ(n²) lower bound is unavoidable"
    } else {
        "VIOLATION"
    });
    t
}

/// E22: the three points of the bits/time frontier (§8) — §4.1 run
/// synchronously, Figure 2 plain, and Figure 2 time-encoded into
/// zero-content messages (messages preserved, bits → 0, time → ×3·2ⁿ⁺¹);
/// plus the §4.2.2 alternating-ring route as a fourth data point.
#[must_use]
pub fn e22_bits_time_frontier() -> Table {
    let mut t = Table::new(
        "E22",
        "ablation: the full bits/time frontier on one input (small n; the encoded window is 3·2^(n+1))",
        &["route", "n", "messages", "bits", "cycles"],
    );
    let n = 9usize;
    let inputs: Vec<u8> = (0..n).map(|i| u8::from(i % 3 == 0)).collect();
    let config = RingConfig::oriented(inputs.clone());

    let asy = async_input_dist::run(&config, &mut SynchronizingScheduler).unwrap();
    t.push(vec![
        "§4.1 sync-scheduled".into(),
        n.to_string(),
        asy.messages.to_string(),
        asy.bits.to_string(),
        asy.max_epoch.to_string(),
    ]);

    let fig2 = sync_input_dist::run(&config).unwrap();
    t.push(vec![
        "Fig. 2 plain".into(),
        n.to_string(),
        fig2.messages.to_string(),
        fig2.bits.to_string(),
        fig2.cycles.to_string(),
    ]);

    let mut engine = SyncEngine::from_config(&config, |_, &b| {
        TimeEncoded::new(SyncInputDist::new(n, b), n)
    });
    engine.set_max_cycles(100_000_000);
    let encoded = engine.run().unwrap();
    t.push(vec![
        "Fig. 2 time-encoded".into(),
        n.to_string(),
        encoded.messages.to_string(),
        encoded.bits.to_string(),
        encoded.cycles.to_string(),
    ]);

    // The alternating-ring two-computation route at even n.
    let m = 8usize;
    let even_n = 2 * m;
    let alt_inputs: Vec<u8> = (0..even_n).map(|i| u8::from(i % 3 == 0)).collect();
    let alt_orient: Vec<Orientation> = (0..even_n)
        .map(|i| Orientation::from_bit((i % 2) as u8))
        .collect();
    let alt_config = RingConfig::new(alt_inputs, alt_orient).unwrap();
    let alt = alternating::run(&alt_config).unwrap();
    t.push(vec![
        "§4.2.2 alternating".into(),
        even_n.to_string(),
        alt.messages.to_string(),
        alt.bits.to_string(),
        alt.cycles.to_string(),
    ]);

    t.set_verdict(
        "same knowledge, four prices: minimum time (quadratic messages), balanced, zero bits \
         (exponential time), and the alternating-ring route — the §8 trade-off is real and steep",
    );
    t
}
