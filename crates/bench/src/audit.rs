//! The asymptotic complexity auditor and perf-trajectory regression gate.
//!
//! Three layers, all consumed by the `audit` binary:
//!
//! 1. **Measurement** — [`measure_snapshot`] sweeps each §4 algorithm
//!    over a ring-size grid with an event-collecting observer attached,
//!    recording the deterministic cost vector `{messages, bits, time,
//!    critical_path}` per cell (critical path = longest causal chain, via
//!    [`CausalDag`]). Wall-clock per cell is opt-in and never part of the
//!    committed artifact — snapshots are keyed by a caller-supplied
//!    revision label, not by clocks.
//! 2. **Fitting** — [`fit_messages`] least-squares-fits each algorithm's
//!    message curve against `c·n`, `c·n·log n` and `c·n²`, and
//!    [`audit_fits`] asserts the winning model (or the exact `n(n−1)`
//!    predicate for §4.1) matches the paper's theorem.
//! 3. **The gate** — [`diff_snapshots`] compares two snapshots cell by
//!    cell and reports every deterministic metered cost that regressed
//!    beyond a tolerance; wall-clock deltas are warnings only.
//!
//! The artifact (`BENCH_trajectory.json`) appends snapshots over time and
//! its schema is pinned byte-for-byte by `trajectory_golden` in
//! `crates/bench/tests`.

use std::fmt::Write as _;

use anonring_core::algorithms::async_input_dist::AsyncInputDist;
use anonring_core::algorithms::dyn_broadcast;
use anonring_core::algorithms::orientation::OrientationProc;
use anonring_core::algorithms::start_sync::StartSync;
use anonring_core::algorithms::sync_and::SyncAnd;
use anonring_core::algorithms::sync_input_dist::SyncInputDist;
use anonring_sim::r#async::{AsyncEngine, SynchronizingScheduler};
use anonring_sim::runtime::TraceEvent;
use anonring_sim::sync::SyncEngine;
use anonring_sim::telemetry::{CausalDag, PathWeight};
use anonring_sim::{RingConfig, RingTopology, WakeSchedule};

use crate::json::Value;
use crate::sweep::sweep_default;

/// Current schema number of `BENCH_trajectory.json`.
pub const TRAJECTORY_SCHEMA: u64 = 1;

/// Ring sizes the default audit sweep measures.
pub const DEFAULT_GRID: [usize; 5] = [16, 32, 64, 128, 256];

/// Candidate growth models for the message-cost fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// `c·n`.
    Linear,
    /// `c·n·log n` (natural log; the base is absorbed into `c`).
    NLogN,
    /// `c·n²`.
    Quadratic,
}

impl Model {
    /// All candidates, in reporting order.
    pub const ALL: [Model; 3] = [Model::Linear, Model::NLogN, Model::Quadratic];

    /// The model's basis function at ring size `n`.
    #[must_use]
    pub fn basis(self, n: u64) -> f64 {
        let x = n as f64;
        match self {
            Model::Linear => x,
            Model::NLogN => x * x.ln(),
            Model::Quadratic => x * x,
        }
    }

    /// Display name (used in reports and assertions).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Model::Linear => "c*n",
            Model::NLogN => "c*n*log n",
            Model::Quadratic => "c*n^2",
        }
    }
}

/// Required residual advantage of `c·n·log n` over `c·n²` for an
/// [`Theorem::NLogN`] algorithm to pass (quadratic must fit at least this
/// many times worse).
pub const NLOGN_MARGIN: f64 = 2.0;

/// What the paper's theorem predicts for an algorithm's message cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Theorem {
    /// Exactly `n(n−1)` messages at every grid point (§4.1, Theorem 5.1).
    ExactQuadratic,
    /// `O(n log n)` messages: [`Model::NLogN`] must beat
    /// [`Model::Quadratic`] by [`NLOGN_MARGIN`] in residual (the measured
    /// workload may grow slower than the worst case — that still
    /// satisfies the upper bound).
    NLogN,
    /// `O(n)` messages: the best-fit model must be [`Model::Linear`].
    Linear,
    /// `Θ(n²)` messages: the best-fit model must be [`Model::Quadratic`]
    /// (the dynamic-broadcast adversary floods `2·Σ|E_r|` messages, not an
    /// exact closed form, so the check is the fit rather than a
    /// predicate).
    Quadratic,
}

impl Theorem {
    /// Stable token used in the JSON artifact.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            Theorem::ExactQuadratic => "exact-n(n-1)",
            Theorem::NLogN => "n-log-n",
            Theorem::Linear => "linear",
            Theorem::Quadratic => "quadratic",
        }
    }

    /// Parses the artifact token back.
    #[must_use]
    pub fn from_token(token: &str) -> Option<Theorem> {
        match token {
            "exact-n(n-1)" => Some(Theorem::ExactQuadratic),
            "n-log-n" => Some(Theorem::NLogN),
            "linear" => Some(Theorem::Linear),
            "quadratic" => Some(Theorem::Quadratic),
            _ => None,
        }
    }
}

/// One least-squares fit of a cost curve against a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fit {
    /// The fitted model.
    pub model: Model,
    /// The fitted coefficient `c` (minimizing `Σ(y − c·f(n))²`).
    pub coefficient: f64,
    /// Relative residual `√(Σ(y − c·f(n))² / Σy²)`; 0 is a perfect fit.
    pub residual: f64,
}

/// Least-squares fit of `(n, y)` samples against one model.
#[must_use]
pub fn fit_model(samples: &[(u64, u64)], model: Model) -> Fit {
    let (mut num, mut den) = (0.0f64, 0.0f64);
    for &(n, y) in samples {
        let f = model.basis(n);
        num += f * y as f64;
        den += f * f;
    }
    let coefficient = if den > 0.0 { num / den } else { 0.0 };
    let (mut ss_res, mut ss_tot) = (0.0f64, 0.0f64);
    for &(n, y) in samples {
        let e = y as f64 - coefficient * model.basis(n);
        ss_res += e * e;
        ss_tot += (y as f64) * (y as f64);
    }
    let residual = if ss_tot > 0.0 {
        (ss_res / ss_tot).sqrt()
    } else {
        0.0
    };
    Fit {
        model,
        coefficient,
        residual,
    }
}

/// Fits all candidate models to the message curve and returns them sorted
/// best (smallest residual) first.
#[must_use]
pub fn fit_messages(samples: &[(u64, u64)]) -> Vec<Fit> {
    let mut fits: Vec<Fit> = Model::ALL.iter().map(|&m| fit_model(samples, m)).collect();
    fits.sort_by(|a, b| a.residual.total_cmp(&b.residual));
    fits
}

/// The log–log slope of the samples (fitted exponent of `y ≈ c·n^k`),
/// skipping zero samples. `0.0` when fewer than two usable points.
#[must_use]
pub fn log_log_slope(samples: &[(u64, u64)]) -> f64 {
    let points: Vec<(f64, f64)> = samples
        .iter()
        .filter(|&&(_, y)| y > 0)
        .map(|&(n, y)| ((n as f64).ln(), (y as f64).ln()))
        .collect();
    if points.len() < 2 {
        return 0.0;
    }
    let len = points.len() as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / len;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / len;
    let (mut num, mut den) = (0.0f64, 0.0f64);
    for (x, y) in points {
        num += (x - mean_x) * (y - mean_y);
        den += (x - mean_x) * (x - mean_x);
    }
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// One measured grid cell of one algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditCell {
    /// Ring size.
    pub n: u64,
    /// Total messages the run metered.
    pub messages: u64,
    /// Total bits the run metered.
    pub bits: u64,
    /// The run's time measure: cycles (sync) or max arrival epoch (async).
    pub time: u64,
    /// Length (hops) of the longest causal chain of the run.
    pub critical_path: u64,
    /// Wall-clock milliseconds of the run — opt-in, nondeterministic, and
    /// never part of the committed baseline (warnings only in the gate).
    pub wall_ms: Option<u64>,
}

/// One algorithm's measured curve plus the theorem it must match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlgorithmRun {
    /// Algorithm name (module name in `anonring-core`).
    pub algorithm: String,
    /// The paper's predicted message-cost class.
    pub theorem: Theorem,
    /// Measured cells, ascending in `n`.
    pub cells: Vec<AuditCell>,
}

impl AlgorithmRun {
    /// The `(n, messages)` samples for fitting.
    #[must_use]
    pub fn message_samples(&self) -> Vec<(u64, u64)> {
        self.cells.iter().map(|c| (c.n, c.messages)).collect()
    }
}

/// One audit sweep: every algorithm's curve at one revision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Caller-supplied revision label (git revision, "baseline", "ci", …).
    pub revision: String,
    /// Per-algorithm curves, in sweep order.
    pub algorithms: Vec<AlgorithmRun>,
}

/// The append-only trajectory: snapshots across revisions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trajectory {
    /// Snapshots, oldest first.
    pub snapshots: Vec<Snapshot>,
}

impl Trajectory {
    /// An empty trajectory.
    #[must_use]
    pub fn new() -> Trajectory {
        Trajectory::default()
    }

    /// The snapshot with the given revision label.
    #[must_use]
    pub fn snapshot(&self, revision: &str) -> Option<&Snapshot> {
        self.snapshots.iter().find(|s| s.revision == revision)
    }

    /// The most recent snapshot.
    #[must_use]
    pub fn latest(&self) -> Option<&Snapshot> {
        self.snapshots.last()
    }

    /// Replaces the snapshot with the same revision label, or appends.
    pub fn upsert(&mut self, snapshot: Snapshot) {
        match self
            .snapshots
            .iter_mut()
            .find(|s| s.revision == snapshot.revision)
        {
            Some(slot) => *slot = snapshot,
            None => self.snapshots.push(snapshot),
        }
    }

    /// Serializes the trajectory in the stable artifact schema (pinned
    /// byte-for-byte by the `trajectory_golden` test).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{\n  \"schema\": {TRAJECTORY_SCHEMA},");
        out.push_str("  \"snapshots\": [");
        for (si, snap) in self.snapshots.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\n      \"revision\": \"{}\",\n      \"algorithms\": [",
                if si > 0 { "," } else { "" },
                crate::json::json_escape(&snap.revision)
            );
            for (ai, algo) in snap.algorithms.iter().enumerate() {
                let _ = write!(
                    out,
                    "{}\n        {{\n          \"algorithm\": \"{}\",\n          \
                     \"theorem\": \"{}\",\n          \"cells\": [",
                    if ai > 0 { "," } else { "" },
                    crate::json::json_escape(&algo.algorithm),
                    algo.theorem.token()
                );
                for (ci, cell) in algo.cells.iter().enumerate() {
                    let _ = write!(
                        out,
                        "{}\n            {{\"n\": {}, \"messages\": {}, \"bits\": {}, \
                         \"time\": {}, \"critical_path\": {}",
                        if ci > 0 { "," } else { "" },
                        cell.n,
                        cell.messages,
                        cell.bits,
                        cell.time,
                        cell.critical_path
                    );
                    if let Some(wall) = cell.wall_ms {
                        let _ = write!(out, ", \"wall_ms\": {wall}");
                    }
                    out.push('}');
                }
                out.push_str("\n          ]\n        }");
            }
            out.push_str("\n      ]\n    }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses the artifact back.
    ///
    /// # Errors
    ///
    /// A message naming the malformed field (or byte offset for raw JSON
    /// syntax errors).
    pub fn parse(input: &str) -> Result<Trajectory, String> {
        let doc = Value::parse(input)?;
        let schema = doc
            .get("schema")
            .and_then(Value::as_u64)
            .ok_or("missing \"schema\"")?;
        if schema != TRAJECTORY_SCHEMA {
            return Err(format!(
                "unsupported trajectory schema {schema} (this tool reads {TRAJECTORY_SCHEMA})"
            ));
        }
        let mut trajectory = Trajectory::new();
        for snap in doc
            .get("snapshots")
            .and_then(Value::as_array)
            .ok_or("missing \"snapshots\"")?
        {
            let revision = snap
                .get("revision")
                .and_then(Value::as_str)
                .ok_or("snapshot missing \"revision\"")?
                .to_string();
            let mut algorithms = Vec::new();
            for algo in snap
                .get("algorithms")
                .and_then(Value::as_array)
                .ok_or("snapshot missing \"algorithms\"")?
            {
                let name = algo
                    .get("algorithm")
                    .and_then(Value::as_str)
                    .ok_or("algorithm entry missing \"algorithm\"")?;
                let token = algo
                    .get("theorem")
                    .and_then(Value::as_str)
                    .ok_or("algorithm entry missing \"theorem\"")?;
                let theorem = Theorem::from_token(token)
                    .ok_or_else(|| format!("unknown theorem token {token:?}"))?;
                let mut cells = Vec::new();
                for cell in algo
                    .get("cells")
                    .and_then(Value::as_array)
                    .ok_or("algorithm entry missing \"cells\"")?
                {
                    let field = |key: &str| {
                        cell.get(key)
                            .and_then(Value::as_u64)
                            .ok_or_else(|| format!("cell of {name:?} missing numeric {key:?}"))
                    };
                    cells.push(AuditCell {
                        n: field("n")?,
                        messages: field("messages")?,
                        bits: field("bits")?,
                        time: field("time")?,
                        critical_path: field("critical_path")?,
                        wall_ms: cell.get("wall_ms").and_then(Value::as_u64),
                    });
                }
                algorithms.push(AlgorithmRun {
                    algorithm: name.to_string(),
                    theorem,
                    cells,
                });
            }
            trajectory.snapshots.push(Snapshot {
                revision,
                algorithms,
            });
        }
        Ok(trajectory)
    }
}

/// Deterministic workload bits shared by the audited runs (same
/// multiplicative-hash pattern as the recorded telemetry cells).
fn mixed_bits(n: usize) -> Vec<u8> {
    (0..n).map(|i| ((i * 2654435761) >> 7 & 1) as u8).collect()
}

/// Critical-path hop count of a collected event stream.
fn critical_hops(events: &[TraceEvent]) -> u64 {
    CausalDag::from_events(events)
        .critical_path(PathWeight::Hops)
        .map_or(0, |p| p.hops)
}

fn cell_from(
    n: usize,
    messages: u64,
    bits: u64,
    time: u64,
    events: &[TraceEvent],
    wall_ms: Option<u64>,
) -> AuditCell {
    AuditCell {
        n: n as u64,
        messages,
        bits,
        time,
        critical_path: critical_hops(events),
        wall_ms,
    }
}

fn timed<R>(wall: bool, run: impl FnOnce() -> R) -> (R, Option<u64>) {
    if wall {
        let start = std::time::Instant::now();
        let result = run();
        (result, Some(start.elapsed().as_millis() as u64))
    } else {
        (run(), None)
    }
}

/// One audited cell: §4.1 asynchronous input distribution under the
/// synchronizing adversary (exactly `n(n−1)` messages).
fn measure_async_input_dist(n: usize, wall: bool) -> AuditCell {
    let config = RingConfig::oriented(mixed_bits(n));
    let mut events: Vec<TraceEvent> = Vec::new();
    let (report, wall_ms) = timed(wall, || {
        let mut engine =
            AsyncEngine::from_config(&config, |_, &input| AsyncInputDist::new(n, input));
        let mut obs = |e: &TraceEvent| events.push(*e);
        engine
            .run_with_observer(&mut SynchronizingScheduler, &mut obs)
            .expect("async_input_dist audit run")
    });
    cell_from(
        n,
        report.messages,
        report.bits,
        report.max_epoch,
        &events,
        wall_ms,
    )
}

/// One audited cell: Fig. 2 synchronous input distribution (`O(n log n)`).
fn measure_sync_input_dist(n: usize, wall: bool) -> AuditCell {
    let config = RingConfig::oriented(mixed_bits(n));
    let mut events: Vec<TraceEvent> = Vec::new();
    let (report, wall_ms) = timed(wall, || {
        let mut engine = SyncEngine::from_config(&config, |_, &input| SyncInputDist::new(n, input));
        let mut obs = |e: &TraceEvent| events.push(*e);
        engine
            .run_with_observer(&mut obs)
            .expect("sync_input_dist audit run")
    });
    cell_from(
        n,
        report.messages,
        report.bits,
        report.cycles,
        &events,
        wall_ms,
    )
}

/// One audited cell: Fig. 4 orientation on a scrambled ring (`O(n log n)`).
fn measure_orientation(n: usize, wall: bool) -> AuditCell {
    let topology = RingTopology::from_bits(&mixed_bits(n)).expect("audit topology");
    let mut events: Vec<TraceEvent> = Vec::new();
    let (report, wall_ms) = timed(wall, || {
        let procs = (0..n).map(|_| OrientationProc::new(n)).collect();
        let mut engine = SyncEngine::new(topology.clone(), procs).expect("orientation engine");
        engine.set_max_cycles((2 * n as u64 + 2) * (2 * n as u64 + 2));
        let mut obs = |e: &TraceEvent| events.push(*e);
        engine
            .run_with_observer(&mut obs)
            .expect("orientation audit run")
    });
    cell_from(
        n,
        report.messages,
        report.bits,
        report.cycles,
        &events,
        wall_ms,
    )
}

/// One audited cell: Fig. 5 start synchronization under a random wake
/// schedule (`O(n log n)`).
fn measure_start_sync(n: usize, wall: bool) -> AuditCell {
    let wake = WakeSchedule::random(n, 5);
    let topology = RingTopology::oriented(n).expect("audit topology");
    let mut events: Vec<TraceEvent> = Vec::new();
    let (report, wall_ms) = timed(wall, || {
        let procs = (0..n).map(|_| StartSync::new(n)).collect();
        let mut engine = SyncEngine::new(topology.clone(), procs).expect("start_sync engine");
        engine
            .set_wakeups(wake.as_slice().to_vec())
            .expect("wake schedule");
        engine.set_max_cycles(((2 * n as u64 + 2) * (2 * n as u64 + 2)).max(10_000));
        let mut obs = |e: &TraceEvent| events.push(*e);
        engine
            .run_with_observer(&mut obs)
            .expect("start_sync audit run")
    });
    cell_from(
        n,
        report.messages,
        report.bits,
        report.cycles,
        &events,
        wall_ms,
    )
}

/// One audited cell: §4.2 synchronous AND on alternating inputs (`O(n)`).
fn measure_sync_and(n: usize, wall: bool) -> AuditCell {
    let inputs: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
    let config = RingConfig::oriented(inputs);
    let mut events: Vec<TraceEvent> = Vec::new();
    let (report, wall_ms) = timed(wall, || {
        let mut engine = SyncEngine::from_config(&config, |_, &input| SyncAnd::new(n, input));
        let mut obs = |e: &TraceEvent| events.push(*e);
        engine
            .run_with_observer(&mut obs)
            .expect("sync_and audit run")
    });
    cell_from(
        n,
        report.messages,
        report.bits,
        report.cycles,
        &events,
        wall_ms,
    )
}

/// One audited cell: dynamic-network one-bit broadcast under the seeded
/// connectivity adversary (`Θ(n²)` single-bit messages).
fn measure_dyn_broadcast(n: usize, wall: bool) -> AuditCell {
    let topology = dyn_broadcast::audited_topology(n).expect("audit topology");
    let inputs = mixed_bits(n);
    let mut events: Vec<TraceEvent> = Vec::new();
    let (report, wall_ms) = timed(wall, || {
        let procs = dyn_broadcast::processes(&topology, &inputs).expect("audit job shape");
        let mut engine = AsyncEngine::new(topology.clone(), procs).expect("dyn_broadcast engine");
        let mut obs = |e: &TraceEvent| events.push(*e);
        engine
            .run_with_observer(&mut SynchronizingScheduler, &mut obs)
            .expect("dyn_broadcast audit run")
    });
    cell_from(
        n,
        report.messages,
        report.bits,
        report.max_epoch,
        &events,
        wall_ms,
    )
}

/// The audited algorithms: `(name, theorem, measure)` in sweep order.
type Measure = fn(usize, bool) -> AuditCell;
const AUDITED: [(&str, Theorem, Measure); 6] = [
    (
        "async_input_dist",
        Theorem::ExactQuadratic,
        measure_async_input_dist,
    ),
    ("sync_input_dist", Theorem::NLogN, measure_sync_input_dist),
    ("orientation", Theorem::NLogN, measure_orientation),
    ("start_sync", Theorem::NLogN, measure_start_sync),
    ("sync_and", Theorem::Linear, measure_sync_and),
    ("dyn_broadcast", Theorem::Quadratic, measure_dyn_broadcast),
];

/// Sweeps every audited algorithm over `grid` and returns one snapshot
/// labeled `revision`. Cells run in parallel (the measurements are
/// deterministic, so the result is thread-count independent); `wall`
/// additionally stamps nondeterministic wall-clock milliseconds per cell.
#[must_use]
pub fn measure_snapshot(revision: &str, grid: &[usize], wall: bool) -> Snapshot {
    let cells: Vec<(usize, usize)> = (0..AUDITED.len())
        .flat_map(|a| grid.iter().map(move |&n| (a, n)))
        .collect();
    let measured = sweep_default(&cells, |_, &(a, n)| AUDITED[a].2(n, wall));
    let algorithms = AUDITED
        .iter()
        .enumerate()
        .map(|(a, &(name, theorem, _))| AlgorithmRun {
            algorithm: name.to_string(),
            theorem,
            cells: measured
                .iter()
                .zip(&cells)
                .filter(|(_, &(ai, _))| ai == a)
                .map(|(cell, _)| cell.clone())
                .collect(),
        })
        .collect();
    Snapshot {
        revision: revision.to_string(),
        algorithms,
    }
}

/// The verdict of checking one algorithm's curve against its theorem.
#[derive(Debug, Clone, PartialEq)]
pub struct FitReport {
    /// Algorithm name.
    pub algorithm: String,
    /// The theorem checked against.
    pub theorem: Theorem,
    /// All candidate fits, best first (empty for the exact predicate).
    pub fits: Vec<Fit>,
    /// Fitted log–log exponent of the message curve.
    pub exponent: f64,
    /// Whether the curve matches the theorem.
    pub pass: bool,
    /// Human-readable verdict line.
    pub detail: String,
}

/// Checks every algorithm of a snapshot against its theorem.
#[must_use]
pub fn audit_fits(snapshot: &Snapshot) -> Vec<FitReport> {
    snapshot
        .algorithms
        .iter()
        .map(|algo| {
            let samples = algo.message_samples();
            let exponent = log_log_slope(&samples);
            let fits = fit_messages(&samples);
            let (pass, detail) = match algo.theorem {
                Theorem::ExactQuadratic => {
                    let off: Vec<String> = algo
                        .cells
                        .iter()
                        .filter(|c| c.messages != c.n * (c.n - 1))
                        .map(|c| {
                            format!("n={} measured {} want {}", c.n, c.messages, c.n * (c.n - 1))
                        })
                        .collect();
                    if off.is_empty() {
                        (
                            true,
                            "messages = n(n-1) exactly at every grid point".to_string(),
                        )
                    } else {
                        (false, format!("n(n-1) violated: {}", off.join("; ")))
                    }
                }
                Theorem::NLogN => {
                    // O(n log n) is an upper bound: the check is that
                    // c·n·log n beats c·n² by a residual margin (the
                    // measured workload may grow even slower than the
                    // worst case, which still satisfies the theorem).
                    let nlogn = fit_model(&samples, Model::NLogN);
                    let quad = fit_model(&samples, Model::Quadratic);
                    let margin = quad.residual / nlogn.residual.max(1e-12);
                    if nlogn.residual < quad.residual && margin >= NLOGN_MARGIN {
                        (
                            true,
                            format!(
                                "{} beats {} by {:.1}x residual margin \
                                 (c={:.3}, residual {:.4})",
                                Model::NLogN.name(),
                                Model::Quadratic.name(),
                                margin,
                                nlogn.coefficient,
                                nlogn.residual
                            ),
                        )
                    } else {
                        (
                            false,
                            format!(
                                "{} does not beat {}: residuals {:.4} vs {:.4}",
                                Model::NLogN.name(),
                                Model::Quadratic.name(),
                                nlogn.residual,
                                quad.residual
                            ),
                        )
                    }
                }
                Theorem::Linear | Theorem::Quadratic => {
                    let want = match algo.theorem {
                        Theorem::Linear => Model::Linear,
                        _ => Model::Quadratic,
                    };
                    let best = fits[0];
                    if best.model == want {
                        (
                            true,
                            format!(
                                "best fit {} (c={:.3}, residual {:.4})",
                                best.model.name(),
                                best.coefficient,
                                best.residual
                            ),
                        )
                    } else {
                        (
                            false,
                            format!(
                                "best fit is {} (residual {:.4}), want {}",
                                best.model.name(),
                                best.residual,
                                want.name()
                            ),
                        )
                    }
                }
            };
            FitReport {
                algorithm: algo.algorithm.clone(),
                theorem: algo.theorem,
                fits,
                exponent,
                pass,
                detail,
            }
        })
        .collect()
}

/// One metered cost that got worse between two snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    /// Algorithm the cell belongs to.
    pub algorithm: String,
    /// Ring size of the cell.
    pub n: u64,
    /// Which metered cost regressed.
    pub metric: &'static str,
    /// Old value.
    pub old: u64,
    /// New (worse) value.
    pub new: u64,
}

impl core::fmt::Display for Regression {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let pct = if self.old > 0 {
            (self.new as f64 - self.old as f64) / self.old as f64 * 100.0
        } else {
            f64::INFINITY
        };
        write!(
            f,
            "{} n={} {}: {} -> {} (+{:.1}%)",
            self.algorithm, self.n, self.metric, self.old, self.new, pct
        )
    }
}

/// The gate's verdict on a pair of snapshots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Deterministic costs that regressed beyond tolerance (gate fails
    /// when nonempty).
    pub regressions: Vec<Regression>,
    /// Deterministic costs that improved (informational).
    pub improvements: Vec<Regression>,
    /// Non-gating observations: wall-clock deltas, cells or algorithms
    /// missing on one side.
    pub warnings: Vec<String>,
}

/// Compares two snapshots cell by cell. A deterministic metered cost
/// (`messages`, `bits`, `time`, `critical_path`) that increased by more
/// than `tolerance_pct` percent is a [`Regression`]; wall-clock deltas
/// and coverage changes are warnings only.
#[must_use]
pub fn diff_snapshots(old: &Snapshot, new: &Snapshot, tolerance_pct: f64) -> DiffReport {
    let mut report = DiffReport::default();
    for old_algo in &old.algorithms {
        let Some(new_algo) = new
            .algorithms
            .iter()
            .find(|a| a.algorithm == old_algo.algorithm)
        else {
            report.warnings.push(format!(
                "algorithm {} missing from new snapshot",
                old_algo.algorithm
            ));
            continue;
        };
        for old_cell in &old_algo.cells {
            let Some(new_cell) = new_algo.cells.iter().find(|c| c.n == old_cell.n) else {
                report.warnings.push(format!(
                    "{} n={} missing from new snapshot",
                    old_algo.algorithm, old_cell.n
                ));
                continue;
            };
            let metrics: [(&'static str, u64, u64); 4] = [
                ("messages", old_cell.messages, new_cell.messages),
                ("bits", old_cell.bits, new_cell.bits),
                ("time", old_cell.time, new_cell.time),
                (
                    "critical_path",
                    old_cell.critical_path,
                    new_cell.critical_path,
                ),
            ];
            for (metric, old_v, new_v) in metrics {
                let entry = Regression {
                    algorithm: old_algo.algorithm.clone(),
                    n: old_cell.n,
                    metric,
                    old: old_v,
                    new: new_v,
                };
                let ceiling = old_v as f64 * (1.0 + tolerance_pct / 100.0);
                if new_v > old_v && new_v as f64 > ceiling {
                    report.regressions.push(entry);
                } else if new_v < old_v {
                    report.improvements.push(entry);
                }
            }
            if let (Some(old_wall), Some(new_wall)) = (old_cell.wall_ms, new_cell.wall_ms) {
                if new_wall > old_wall {
                    report.warnings.push(format!(
                        "{} n={} wall_ms: {} -> {} (wall clock is advisory)",
                        old_algo.algorithm, old_cell.n, old_wall, new_wall
                    ));
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::{
        audit_fits, diff_snapshots, fit_messages, fit_model, log_log_slope, measure_snapshot,
        AlgorithmRun, AuditCell, Model, Snapshot, Theorem, Trajectory,
    };

    fn synthetic(curve: impl Fn(u64) -> u64) -> Vec<(u64, u64)> {
        [16u64, 32, 64, 128, 256]
            .iter()
            .map(|&n| (n, curve(n)))
            .collect()
    }

    #[test]
    fn least_squares_recovers_planted_coefficients() {
        let quad = synthetic(|n| 3 * n * n);
        let fit = fit_model(&quad, Model::Quadratic);
        assert!((fit.coefficient - 3.0).abs() < 1e-9, "{fit:?}");
        assert!(fit.residual < 1e-12, "{fit:?}");
        assert_eq!(fit_messages(&quad)[0].model, Model::Quadratic);

        let nlogn = synthetic(|n| (2.0 * n as f64 * (n as f64).ln()) as u64);
        assert_eq!(fit_messages(&nlogn)[0].model, Model::NLogN);

        let lin = synthetic(|n| 7 * n);
        assert_eq!(fit_messages(&lin)[0].model, Model::Linear);
        assert!((log_log_slope(&quad) - 2.0).abs() < 1e-6);
        assert!((log_log_slope(&lin) - 1.0).abs() < 1e-6);
    }

    fn cell(n: u64, messages: u64) -> AuditCell {
        AuditCell {
            n,
            messages,
            bits: messages * 2,
            time: n,
            critical_path: n,
            wall_ms: None,
        }
    }

    fn snapshot(revision: &str, messages_at_64: u64) -> Snapshot {
        Snapshot {
            revision: revision.to_string(),
            algorithms: vec![AlgorithmRun {
                algorithm: "sync_and".to_string(),
                theorem: Theorem::Linear,
                cells: vec![cell(16, 32), cell(64, messages_at_64)],
            }],
        }
    }

    #[test]
    fn diff_names_the_regressed_cell_and_tolerates_noise() {
        let old = snapshot("old", 128);
        let inflated = snapshot("new", 160);
        let report = diff_snapshots(&old, &inflated, 0.0);
        assert_eq!(report.regressions.len(), 2, "{report:?}"); // messages + bits
        let shown = report.regressions[0].to_string();
        assert!(
            shown.contains("sync_and n=64 messages: 128 -> 160"),
            "{shown}"
        );

        // The same inflation passes under a 30% tolerance.
        let lenient = diff_snapshots(&old, &inflated, 30.0);
        assert!(lenient.regressions.is_empty(), "{lenient:?}");

        // Identical snapshots: clean.
        let same = diff_snapshots(&old, &old, 0.0);
        assert!(same.regressions.is_empty() && same.improvements.is_empty());

        // Improvements are reported but don't gate.
        let better = diff_snapshots(&inflated, &old, 0.0);
        assert!(better.regressions.is_empty());
        assert_eq!(better.improvements.len(), 2);
    }

    #[test]
    fn diff_warns_on_missing_coverage_instead_of_failing() {
        let old = snapshot("old", 128);
        let mut new = snapshot("new", 128);
        new.algorithms[0].cells.pop();
        let report = diff_snapshots(&old, &new, 0.0);
        assert!(report.regressions.is_empty());
        assert_eq!(report.warnings.len(), 1);
        assert!(report.warnings[0].contains("n=64 missing"), "{report:?}");
    }

    #[test]
    fn trajectory_round_trips_and_upserts_by_revision() {
        let mut t = Trajectory::new();
        t.upsert(snapshot("a", 128));
        t.upsert(snapshot("b", 130));
        t.upsert(snapshot("a", 129)); // replaces, keeps order
        assert_eq!(t.snapshots.len(), 2);
        assert_eq!(
            t.snapshot("a").unwrap().algorithms[0].cells[1].messages,
            129
        );
        assert_eq!(t.latest().unwrap().revision, "b");
        let parsed = Trajectory::parse(&t.to_json()).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn trajectory_parser_rejects_wrong_schema_and_bad_fields() {
        let err = Trajectory::parse("{\"schema\": 9, \"snapshots\": []}").unwrap_err();
        assert!(err.contains("schema 9"), "{err}");
        let err = Trajectory::parse("{\"snapshots\": []}").unwrap_err();
        assert!(err.contains("schema"), "{err}");
        let doc = "{\"schema\": 1, \"snapshots\": [{\"revision\": \"x\", \"algorithms\": \
                   [{\"algorithm\": \"a\", \"theorem\": \"warp\", \"cells\": []}]}]}";
        let err = Trajectory::parse(doc).unwrap_err();
        assert!(err.contains("warp"), "{err}");
    }

    /// The full measured sweep matches every paper theorem. This is the
    /// library-level form of the `audit fit` acceptance criterion; a
    /// smaller grid keeps the debug-mode test affordable.
    #[test]
    fn measured_curves_match_the_paper_theorems() {
        let snap = measure_snapshot("test", &[16, 32, 64, 128], false);
        assert_eq!(snap.algorithms.len(), 6);
        for report in audit_fits(&snap) {
            assert!(
                report.pass,
                "{}: {} (exponent {:.2})",
                report.algorithm, report.detail, report.exponent
            );
        }
        // §4.1's critical path under the synchronizing adversary equals
        // the metered time (epoch count): causal depth is the paper's
        // time measure.
        let asy = &snap.algorithms[0];
        assert_eq!(asy.algorithm, "async_input_dist");
        for cell in &asy.cells {
            assert_eq!(
                cell.critical_path, cell.time,
                "n={}: critical path must equal the epoch count",
                cell.n
            );
        }
    }
}
