//! Upper-bound experiments: the §4 algorithms against their stated costs
//! (E1–E6) and the §8 bits-versus-time trade-off (E17).
//!
//! The E1 and E3 grids run through [`crate::sweep`]: every (ring size ×
//! workload) cell seeds its own RNG via [`cell_seed`], so the table is
//! byte-identical whether the grid runs on one thread or many.

use std::num::NonZeroUsize;

use anonring_core::algorithms::{
    async_input_dist, orientation, start_sync, start_sync_bits, sync_and, sync_input_dist,
};
use anonring_core::bounds;
use anonring_sim::r#async::SynchronizingScheduler;
use anonring_sim::{Orientation, RingConfig, RingTopology, WakeSchedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sweep::{cell_seed, default_threads, sweep};
use crate::table::{f, CellMetrics, Table};

fn random_orientations(n: usize, rng: &mut StdRng) -> Vec<Orientation> {
    (0..n)
        .map(|_| Orientation::from_bit(rng.gen_range(0..=1)))
        .collect()
}

fn random_bits(n: usize, rng: &mut StdRng) -> Vec<u8> {
    (0..n).map(|_| rng.gen_range(0..=1)).collect()
}

/// E1 (§4.1): asynchronous input distribution costs exactly `n(n−1)`
/// messages, on any orientation.
#[must_use]
pub fn e01_async_input_distribution() -> Table {
    e01_with_threads(default_threads())
}

/// The E1 grid swept over an explicit worker count. Exposed so the
/// determinism test can compare a 1-thread and an N-thread run byte for
/// byte.
#[must_use]
pub fn e01_with_threads(threads: NonZeroUsize) -> Table {
    let mut t = Table::new(
        "E1",
        "§4.1 asynchronous input distribution: messages = n(n−1)",
        &["n", "orientation", "measured", "paper", "ratio"],
    );
    let cells: Vec<(usize, &str)> = [5usize, 9, 16, 33, 64, 101]
        .into_iter()
        .flat_map(|n| [(n, "oriented"), (n, "random")])
        .collect();
    let results = sweep(&cells, threads, |i, &(n, label)| {
        let mut rng = StdRng::seed_from_u64(cell_seed("E1", i as u64));
        let orient = if label == "oriented" {
            vec![Orientation::Clockwise; n]
        } else {
            random_orientations(n, &mut rng)
        };
        let config = RingConfig::new(random_bits(n, &mut rng), orient).unwrap();
        let report = async_input_dist::run(&config, &mut SynchronizingScheduler).unwrap();
        let paper = bounds::async_input_dist_messages(n as u64);
        let row = vec![
            n.to_string(),
            label.into(),
            report.messages.to_string(),
            paper.to_string(),
            format!("{:.3}", report.messages as f64 / paper as f64),
        ];
        let metric = CellMetrics {
            n: n as u64,
            label: label.into(),
            messages: report.messages,
            bits: report.bits,
            time: report.max_epoch,
        };
        (row, metric, report.messages == paper)
    });
    let mut all_exact = true;
    for (row, metric, exact) in results {
        t.push(row);
        t.push_metric(metric);
        all_exact &= exact;
    }
    t.set_verdict(if all_exact {
        "measured message count equals n(n−1) exactly for every n and orientation"
    } else {
        "MISMATCH against n(n−1)"
    });
    t
}

/// E2 (§4.2): synchronous AND in ≤ 2n messages and ≤ ⌊n/2⌋+1 cycles.
#[must_use]
pub fn e02_sync_and() -> Table {
    let mut t = Table::new(
        "E2",
        "§4.2 synchronous AND: messages ≤ 2n, cycles ≤ ⌊n/2⌋+1",
        &["n", "inputs", "messages", "2n", "cycles", "cycle bound"],
    );
    let mut ok = true;
    for n in [8usize, 16, 64, 256, 1024] {
        for (label, inputs) in [
            ("all ones", vec![1u8; n]),
            ("single zero", {
                let mut v = vec![1u8; n];
                v[0] = 0;
                v
            }),
            ("alternating", (0..n).map(|i| (i % 2) as u8).collect()),
        ] {
            let config = RingConfig::oriented(inputs);
            let report = sync_and::run(&config).unwrap();
            ok &= report.messages <= bounds::sync_and_messages(n as u64)
                && report.cycles <= bounds::sync_and_cycles(n as u64);
            t.push_metric(CellMetrics {
                n: n as u64,
                label: label.into(),
                messages: report.messages,
                bits: report.bits,
                time: report.cycles,
            });
            t.push(vec![
                n.to_string(),
                label.into(),
                report.messages.to_string(),
                (2 * n).to_string(),
                report.cycles.to_string(),
                bounds::sync_and_cycles(n as u64).to_string(),
            ]);
        }
    }
    t.set_verdict(if ok {
        "both bounds hold on every workload; all-ones costs zero messages (silence is information)"
    } else {
        "BOUND VIOLATION"
    });
    t
}

/// E3 (Fig. 2): synchronous input distribution in `O(n log n)` messages.
#[must_use]
pub fn e03_sync_input_distribution() -> Table {
    e03_with_threads(default_threads())
}

/// The E3 grid swept over an explicit worker count (see
/// [`e01_with_threads`]).
#[must_use]
pub fn e03_with_threads(threads: NonZeroUsize) -> Table {
    let mut t = Table::new(
        "E3",
        "Fig. 2 synchronous input distribution: messages ≤ n(3·log₁.₅n+1)+n",
        &["n", "inputs", "messages", "bound", "cycles", "n(n−1) async"],
    );
    let labels = ["all equal", "periodic 01", "random", "single one"];
    let cells: Vec<(usize, &str)> = [8usize, 27, 64, 125, 243, 500]
        .into_iter()
        .flat_map(|n| labels.map(|l| (n, l)))
        .collect();
    let results = sweep(&cells, threads, |i, &(n, label)| {
        let inputs = match label {
            "all equal" => vec![1u8; n],
            "periodic 01" => (0..n).map(|i| (i % 2) as u8).collect(),
            "random" => {
                let mut rng = StdRng::seed_from_u64(cell_seed("E3", i as u64));
                random_bits(n, &mut rng)
            }
            _ => (0..n).map(|i| u8::from(i == 0)).collect(),
        };
        let config = RingConfig::oriented(inputs);
        let report = sync_input_dist::run(&config).unwrap();
        let bound = bounds::sync_input_dist_messages(n as u64) + n as f64;
        let row = vec![
            n.to_string(),
            label.into(),
            report.messages.to_string(),
            f(bound),
            report.cycles.to_string(),
            (n * (n - 1)).to_string(),
        ];
        let metric = CellMetrics {
            n: n as u64,
            label: label.into(),
            messages: report.messages,
            bits: report.bits,
            time: report.cycles,
        };
        (row, metric, (report.messages as f64) <= bound)
    });
    let mut ok = true;
    for (row, metric, within) in results {
        t.push(row);
        t.push_metric(metric);
        ok &= within;
    }
    t.set_verdict(if ok {
        "O(n log n) bound holds; compare the last column: the asynchronous cost is an order larger"
    } else {
        "BOUND VIOLATION"
    });
    t
}

/// E4 (Fig. 4): (quasi-)orientation in `O(n log n)` messages.
#[must_use]
pub fn e04_orientation() -> Table {
    let mut t = Table::new(
        "E4",
        "Fig. 4 orientation: messages ≤ 3.5n(log₃n+1)+4n; odd rings oriented, even quasi-oriented",
        &["n", "pattern", "messages", "bound", "result"],
    );
    let mut rng = StdRng::seed_from_u64(4);
    let mut ok = true;
    for n in [9usize, 27, 64, 81, 128, 243] {
        for (label, bits) in [
            ("random", random_bits(n, &mut rng)),
            ("blocks of 2", (0..n).map(|i| u8::from(i % 4 < 2)).collect()),
            ("one dissident", (0..n).map(|i| u8::from(i != 0)).collect()),
        ] {
            let topology = RingTopology::from_bits(&bits).unwrap();
            let report = orientation::run(&topology).unwrap();
            let switched = topology.with_switched(report.outputs());
            let result = if switched.is_oriented() {
                "oriented"
            } else if switched.is_quasi_oriented() {
                "alternating"
            } else {
                ok = false;
                "INVALID"
            };
            if n % 2 == 1 && !switched.is_oriented() {
                ok = false;
            }
            let bound = bounds::orientation_messages(n as u64) + 4.0 * n as f64;
            ok &= (report.messages as f64) <= bound;
            t.push_metric(CellMetrics {
                n: n as u64,
                label: label.into(),
                messages: report.messages,
                bits: report.bits,
                time: report.cycles,
            });
            t.push(vec![
                n.to_string(),
                label.into(),
                report.messages.to_string(),
                f(bound),
                result.into(),
            ]);
        }
    }
    t.set_verdict(if ok {
        "every run quasi-orients within the bound; every odd ring ends fully oriented"
    } else {
        "VIOLATION"
    });
    t
}

/// E5 (Fig. 5): start synchronization in ≤ `2n(1+log₁.₅n)` messages,
/// all processors halting in the same global cycle.
#[must_use]
pub fn e05_start_sync() -> Table {
    let mut t = Table::new(
        "E5",
        "Fig. 5 start synchronization: messages ≤ 2n(1+log₁.₅n)+2n, simultaneous halt",
        &["n", "wake skew", "messages", "bound", "simultaneous"],
    );
    let mut ok = true;
    for n in [8usize, 16, 33, 64, 128, 256] {
        for seed in [0u64, 1, 2] {
            let wake = WakeSchedule::random(n, seed);
            let topology = RingTopology::oriented(n).unwrap();
            let report = start_sync::run(&topology, &wake).unwrap();
            let bound = bounds::start_sync_messages(n as u64) + 2.0 * n as f64;
            ok &= report.halted_simultaneously() && (report.messages as f64) <= bound;
            t.push_metric(CellMetrics {
                n: n as u64,
                label: format!("skew {}", wake.max_skew()),
                messages: report.messages,
                bits: report.bits,
                time: report.cycles,
            });
            t.push(vec![
                n.to_string(),
                wake.max_skew().to_string(),
                report.messages.to_string(),
                f(bound),
                report.halted_simultaneously().to_string(),
            ]);
        }
    }
    t.set_verdict(if ok {
        "all runs halt in one global cycle within the message bound"
    } else {
        "VIOLATION"
    });
    t
}

/// E6 (§4.2.4): the bit-message variant: same guarantee, 1-bit messages,
/// ≤ `4n·log₁.₅n` of them.
#[must_use]
pub fn e06_start_sync_bits() -> Table {
    let mut t = Table::new(
        "E6",
        "§4.2.4 bit-message start synchronization: ≤ 4n·log₁.₅n one-bit messages",
        &["n", "messages", "bound", "bits", "simultaneous"],
    );
    let mut ok = true;
    for n in [8usize, 16, 33, 64, 128, 256] {
        let wake = WakeSchedule::random(n, 6);
        let topology = RingTopology::oriented(n).unwrap();
        let report = start_sync_bits::run(&topology, &wake).unwrap();
        let bound = bounds::start_sync_bits_messages(n as u64) + 4.0 * n as f64;
        ok &= report.halted_simultaneously()
            && (report.messages as f64) <= bound
            && report.bits == report.messages;
        t.push_metric(CellMetrics {
            n: n as u64,
            label: "bit messages".into(),
            messages: report.messages,
            bits: report.bits,
            time: report.cycles,
        });
        t.push(vec![
            n.to_string(),
            report.messages.to_string(),
            f(bound),
            report.bits.to_string(),
            report.halted_simultaneously().to_string(),
        ]);
    }
    t.set_verdict(if ok {
        "time encodes the counts: every message is a single bit and synchronization still holds"
    } else {
        "VIOLATION"
    });
    t
}

/// E17 (§8): the bits-versus-time trade-off between Figure 2
/// (`Θ(n log n)` bits, long runs) and the §4.1 algorithm run on the
/// synchronous schedule (`Θ(n²)` bits, linear time).
#[must_use]
pub fn e17_bits_vs_time() -> Table {
    let mut t = Table::new(
        "E17",
        "§8 bits vs time: Fig. 2 (min messages) against §4.1-run-synchronously (min time)",
        &[
            "n",
            "Fig2 msgs",
            "Fig2 cycles",
            "§4.1 msgs",
            "§4.1 epochs",
            "msg ratio",
            "time ratio",
        ],
    );
    let mut rng = StdRng::seed_from_u64(17);
    for n in [16usize, 64, 128, 256, 512] {
        let config = RingConfig::oriented(random_bits(n, &mut rng));
        let sync = sync_input_dist::run(&config).unwrap();
        let asy = async_input_dist::run(&config, &mut SynchronizingScheduler).unwrap();
        t.push_metric(CellMetrics {
            n: n as u64,
            label: "Fig. 2".into(),
            messages: sync.messages,
            bits: sync.bits,
            time: sync.cycles,
        });
        t.push_metric(CellMetrics {
            n: n as u64,
            label: "§4.1 sync schedule".into(),
            messages: asy.messages,
            bits: asy.bits,
            time: asy.max_epoch,
        });
        t.push(vec![
            n.to_string(),
            sync.messages.to_string(),
            sync.cycles.to_string(),
            asy.messages.to_string(),
            asy.max_epoch.to_string(),
            format!("{:.2}", asy.messages as f64 / sync.messages as f64),
            format!("{:.2}", sync.cycles as f64 / asy.max_epoch as f64),
        ]);
    }
    t.set_verdict(
        "Fig. 2 wins on messages by a growing factor while paying a growing factor in time — \
         the paper's trade-off",
    );
    t
}
