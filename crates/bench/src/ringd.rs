//! The `ringd` job server: streaming ring jobs over real transports.
//!
//! `ringd` reads one JSON job per line — `{"id": …, "algorithm": …,
//! "n": …, "inputs": […], "seed": …}` — runs each on the
//! [`anonring_net`] real-transport runtime, certifies it against the
//! asynchronous simulator (the conformance oracle; on by default), and
//! streams one JSON result per line. Jobs are admitted as they arrive
//! (no batch buffering) into a bounded queue that a worker pool drains;
//! per-job wall-clock budgets abort runaway jobs without taking the
//! server down. With a recording directory configured, every job also
//! leaves a v2 flight-recorder JSONL stamped `"engine":"net"` — now
//! carrying per-event `wall` microsecond stamps — that the `tracer` CLI
//! and the causal-DAG tooling consume unchanged.
//!
//! ## Job schema (one JSON object per line)
//!
//! | field         | type         | default                       |
//! |---------------|--------------|-------------------------------|
//! | `id`          | string       | `job-<line number>`           |
//! | `algorithm`   | string       | — (required; audit-table name)|
//! | `n`           | integer      | — (required; ≥ 2)             |
//! | `inputs`      | `[int]`      | audit harness mixed pattern   |
//! | `seed`        | integer      | `0` (delivery-jitter seed)    |
//! | `capacity`    | integer      | `8` (per-link buffer)         |
//! | `max_delay_us`| integer      | `0` (link-delay bound)        |
//! | `transport`   | string       | `"threads"` (or `"tcp"`)      |
//! | `timeout_ms`  | integer      | `10000`                       |
//! | `conformance` | bool         | `true`                        |
//!
//! ## Control requests
//!
//! A line whose JSON object carries a `"type"` member is a control
//! request, answered immediately (job lines have no `type` field):
//!
//! - `{"type":"metrics"}` → one `{"type":"metrics","format":"json",
//!   "snapshot":{…}}` line with the live [`ServingMetrics`] registry;
//! - `{"type":"metrics","format":"prometheus"}` → the same snapshot as
//!   a Prometheus text exposition, JSON-escaped into the `body` field.
//!
//! ## Result stream
//!
//! One line per job, in completion order (`"type"` is `"result"` or
//! `"error"`), metrics responses interleaved at request time, then a
//! final `{"type":"done", …}` summary line. A malformed or oversized
//! job line yields an `"error"` line and the stream continues. With
//! [`ServeOptions::log`] set, one-line JSON operational logs (job
//! admitted/started/finished/requeued, with sequence numbers and
//! microsecond durations) go to stderr.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use anonring_core::algorithms::driver::Audited;
use anonring_net::conformance::compare;
use anonring_net::{run, NetOptions, NetReport, Transport};
use anonring_sim::r#async::{AsyncEngine, SynchronizingScheduler};
use anonring_sim::telemetry::{FlightRecorder, MetricId, MetricsRegistry};

use crate::json::{json_escape, Value};

/// One parsed job description.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Caller-chosen job identifier, echoed in the result line.
    pub id: String,
    /// Which audited algorithm to run.
    pub algorithm: Audited,
    /// Ring size.
    pub n: usize,
    /// Per-processor inputs (`inputs.len() == n`).
    pub inputs: Vec<u8>,
    /// Delivery-jitter seed.
    pub seed: u64,
    /// Net-runtime options derived from the job fields.
    pub options: NetOptions,
    /// Whether to certify against the simulator.
    pub conformance: bool,
}

fn get_u64(value: &Value, key: &str, default: u64) -> Result<u64, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("{key} must be an integer")),
    }
}

impl JobSpec {
    /// Parses one job line. Line numbers (zero-based) supply the default
    /// job id.
    ///
    /// # Errors
    ///
    /// A message naming the malformed field.
    pub fn parse(line: &str, line_number: usize) -> Result<JobSpec, String> {
        let value = Value::parse(line)?;
        let id = match value.get("id") {
            None | Some(Value::Null) => format!("job-{line_number}"),
            Some(v) => v
                .as_str()
                .ok_or_else(|| "id must be a string".to_string())?
                .to_string(),
        };
        let name = value
            .get("algorithm")
            .and_then(Value::as_str)
            .ok_or_else(|| "missing algorithm name".to_string())?;
        let algorithm = Audited::from_name(name)
            .ok_or_else(|| format!("unknown algorithm {name:?} (audit-table names only)"))?;
        let n = usize::try_from(
            value
                .get("n")
                .and_then(Value::as_u64)
                .ok_or_else(|| "missing ring size n".to_string())?,
        )
        .map_err(|_| "n overflows usize".to_string())?;
        let inputs = match value.get("inputs") {
            None | Some(Value::Null) => default_inputs(algorithm, n),
            Some(v) => v
                .as_array()
                .ok_or_else(|| "inputs must be an array".to_string())?
                .iter()
                .map(|item| {
                    item.as_u64()
                        .and_then(|b| u8::try_from(b).ok())
                        .ok_or_else(|| "inputs must be bytes (0–255)".to_string())
                })
                .collect::<Result<Vec<u8>, String>>()?,
        };
        let seed = get_u64(&value, "seed", 0)?;
        let transport = match value.get("transport") {
            None | Some(Value::Null) => Transport::Threads,
            Some(v) => {
                let name = v
                    .as_str()
                    .ok_or_else(|| "transport must be a string".to_string())?;
                Transport::from_name(name)
                    .ok_or_else(|| format!("unknown transport {name:?} (threads|tcp)"))?
            }
        };
        let options = NetOptions {
            capacity: usize::try_from(get_u64(&value, "capacity", 8)?)
                .map_err(|_| "capacity overflows usize".to_string())?,
            jitter_seed: seed,
            max_delay_us: get_u64(&value, "max_delay_us", 0)?,
            transport,
            timeout: Duration::from_millis(get_u64(&value, "timeout_ms", 10_000)?),
        };
        let conformance = match value.get("conformance") {
            None | Some(Value::Null) => true,
            Some(Value::Bool(b)) => *b,
            Some(_) => return Err("conformance must be a boolean".to_string()),
        };
        Ok(JobSpec {
            id,
            algorithm,
            n,
            inputs,
            seed,
            options,
            conformance,
        })
    }
}

/// The audit harness's deterministic mixed input pattern — bits for the
/// bit-input algorithms, spread bytes for the §4.1 distribution.
#[must_use]
pub fn default_inputs(algorithm: Audited, n: usize) -> Vec<u8> {
    (0..n)
        .map(|i| {
            let mixed = (i * 2654435761) >> 7;
            if algorithm.wants_bit_inputs() {
                (mixed & 1) as u8
            } else {
                (mixed & 0xff) as u8
            }
        })
        .collect()
}

/// Default [`ServeOptions::max_line_bytes`]: 1 MiB.
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// Default [`ServeOptions::max_queue`] admission bound.
pub const DEFAULT_MAX_QUEUE: usize = 4096;

/// Server configuration.
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Worker-pool size; `0` means one worker per available core.
    pub workers: usize,
    /// Where to write one per-job flight recording (`<id>.jsonl`), if
    /// anywhere.
    pub record_dir: Option<PathBuf>,
    /// Emit one-line JSON operational logs on stderr.
    pub log: bool,
    /// Re-run a job this many extra times before emitting its error line
    /// (run failures only; malformed lines never retry).
    pub retries: u32,
    /// Reject job lines longer than this many bytes with an `"error"`
    /// line instead of queueing them; `0` means
    /// [`DEFAULT_MAX_LINE_BYTES`].
    pub max_line_bytes: usize,
    /// Admission bound: the reader blocks once this many jobs are queued
    /// (requeues bypass the bound so workers never deadlock); `0` means
    /// [`DEFAULT_MAX_QUEUE`].
    pub max_queue: usize,
}

impl ServeOptions {
    fn line_limit(&self) -> usize {
        if self.max_line_bytes == 0 {
            DEFAULT_MAX_LINE_BYTES
        } else {
            self.max_line_bytes
        }
    }

    fn queue_limit(&self) -> usize {
        if self.max_queue == 0 {
            DEFAULT_MAX_QUEUE
        } else {
            self.max_queue
        }
    }
}

/// End-of-batch accounting, also emitted as the final `"done"` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Job lines consumed (control requests excluded).
    pub jobs: usize,
    /// Jobs that produced a result.
    pub ok: usize,
    /// Jobs that failed (parse, run, conformance or recording I/O).
    pub failed: usize,
    /// Requeue events (failed attempts that were retried).
    pub requeued: usize,
}

/// Live serving-plane metrics: lock-free counters and gauges on the
/// admission path, per-worker [`MetricsRegistry`] shards for the latency
/// histograms (merged on demand via [`MetricsRegistry::merge`], so the
/// job hot path never contends on a scrape).
#[derive(Debug)]
pub struct ServingMetrics {
    started: Instant,
    accepted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    requeued: AtomicU64,
    recording_bytes: AtomicU64,
    net_backpressure: AtomicU64,
    queue_depth: AtomicU64,
    queue_depth_peak: AtomicU64,
    busy_workers: AtomicU64,
    live_job_bytes: AtomicU64,
    live_job_bytes_peak: AtomicU64,
    scrapes: AtomicU64,
    shards: Vec<Mutex<MetricsRegistry>>,
    cluster: Option<(u64, u64)>,
}

fn as_us(elapsed: Duration) -> u64 {
    u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX)
}

impl ServingMetrics {
    /// A fresh registry with one histogram shard per expected worker
    /// (at least one; workers beyond `workers` share shards round-robin).
    #[must_use]
    pub fn new(workers: usize) -> ServingMetrics {
        ServingMetrics {
            started: Instant::now(),
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            requeued: AtomicU64::new(0),
            recording_bytes: AtomicU64::new(0),
            net_backpressure: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_depth_peak: AtomicU64::new(0),
            busy_workers: AtomicU64::new(0),
            live_job_bytes: AtomicU64::new(0),
            live_job_bytes_peak: AtomicU64::new(0),
            scrapes: AtomicU64::new(0),
            shards: (0..workers.max(1))
                .map(|_| Mutex::new(MetricsRegistry::new()))
                .collect(),
            cluster: None,
        }
    }

    /// Stamps the registry with a cluster identity: snapshots gain the
    /// `ringd_shard_id` / `ringd_cluster_size` gauges and every series is
    /// labelled `shard="<id>"`, so the expositions of all shards of one
    /// cluster can feed a single Prometheus with no series collisions.
    #[must_use]
    pub fn with_cluster(mut self, shard: u64, shards: u64) -> ServingMetrics {
        self.cluster = Some((shard, shards));
        self
    }

    fn shard(&self, worker: usize) -> &Mutex<MetricsRegistry> {
        &self.shards[worker % self.shards.len()]
    }

    fn on_admitted(&self, bytes: usize) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        let live = self
            .live_job_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed)
            + bytes as u64;
        self.live_job_bytes_peak.fetch_max(live, Ordering::Relaxed);
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_depth_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Current depth of the admission queue (requeues included).
    #[must_use]
    pub fn queue_depth_now(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Bytes of job lines currently resident (admitted, not yet settled)
    /// — the resident-set proxy the soak harness watches for growth.
    #[must_use]
    pub fn live_job_bytes_now(&self) -> u64 {
        self.live_job_bytes.load(Ordering::Relaxed)
    }

    fn on_requeued(&self) {
        self.requeued.fetch_add(1, Ordering::Relaxed);
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_depth_peak.fetch_max(depth, Ordering::Relaxed);
    }

    fn on_dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        self.busy_workers.fetch_add(1, Ordering::Relaxed);
    }

    fn on_settled(&self, bytes: usize, ok: bool) {
        self.busy_workers.fetch_sub(1, Ordering::Relaxed);
        self.live_job_bytes
            .fetch_sub(bytes as u64, Ordering::Relaxed);
        if ok {
            self.completed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts a job rejected before queueing (malformed control line or
    /// oversized job line).
    fn on_rejected(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    fn observe_phase(&self, worker: usize, phase: &'static str, us: u64) {
        self.shard(worker)
            .lock()
            .expect("metrics shard poisoned")
            .observe(
                MetricId::with_labels("ringd_job_latency_us", &[("phase", phase)]),
                us,
            );
    }

    fn observe_outcome(&self, worker: usize, outcome: &JobOutcome) {
        self.recording_bytes
            .fetch_add(outcome.recording_bytes, Ordering::Relaxed);
        self.net_backpressure
            .fetch_add(outcome.backpressure_waits, Ordering::Relaxed);
        self.observe_phase(worker, "execute", outcome.execute_us);
        self.observe_phase(worker, "certify", outcome.certify_us);
        self.shard(worker)
            .lock()
            .expect("metrics shard poisoned")
            .observe(
                MetricId::plain("ringd_job_peak_in_flight"),
                outcome.peak_in_flight,
            );
    }

    /// Folds the lock-free counters, the gauges and every histogram shard
    /// into one deterministic-iteration registry snapshot.
    #[must_use]
    pub fn snapshot(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let counters = [
            ("ringd_jobs_accepted_total", &self.accepted),
            ("ringd_jobs_completed_total", &self.completed),
            ("ringd_jobs_failed_total", &self.failed),
            ("ringd_jobs_requeued_total", &self.requeued),
            ("ringd_recording_bytes_total", &self.recording_bytes),
            ("ringd_net_backpressure_waits_total", &self.net_backpressure),
            ("ringd_metrics_scrapes_total", &self.scrapes),
        ];
        for (name, cell) in counters {
            reg.add_counter(MetricId::plain(name), cell.load(Ordering::Relaxed));
        }
        let gauges = [
            ("ringd_queue_depth", &self.queue_depth),
            ("ringd_queue_depth_peak", &self.queue_depth_peak),
            ("ringd_busy_workers", &self.busy_workers),
            ("ringd_live_job_bytes", &self.live_job_bytes),
            ("ringd_live_job_bytes_peak", &self.live_job_bytes_peak),
        ];
        for (name, cell) in gauges {
            reg.set_gauge(
                MetricId::plain(name),
                i64::try_from(cell.load(Ordering::Relaxed)).unwrap_or(i64::MAX),
            );
        }
        reg.set_gauge(
            MetricId::plain("ringd_uptime_us"),
            i64::try_from(as_us(self.started.elapsed())).unwrap_or(i64::MAX),
        );
        reg.set_gauge(
            MetricId::plain("ringd_uptime_seconds"),
            i64::try_from(self.started.elapsed().as_secs()).unwrap_or(i64::MAX),
        );
        for shard in &self.shards {
            reg.merge(&shard.lock().expect("metrics shard poisoned"));
        }
        // The S26 hot-path profile rides every scrape: zero-valued series
        // when the profiler is off, live tallies when it is on.
        reg.merge(&anonring_sim::profile::snapshot());
        if let Some((shard, shards)) = self.cluster {
            reg.set_gauge(
                MetricId::plain("ringd_shard_id"),
                i64::try_from(shard).unwrap_or(i64::MAX),
            );
            reg.set_gauge(
                MetricId::plain("ringd_cluster_size"),
                i64::try_from(shards).unwrap_or(i64::MAX),
            );
            reg = reg.labelled("shard", &shard.to_string());
        }
        reg
    }

    /// Renders one protocol response line for a `metrics` control request
    /// (without the trailing newline). `prometheus` selects the text
    /// exposition (JSON-escaped into `body`); otherwise the JSON snapshot
    /// is embedded verbatim (flattened to one line).
    #[must_use]
    pub fn response_line(&self, prometheus: bool) -> String {
        self.scrapes.fetch_add(1, Ordering::Relaxed);
        let snapshot = self.snapshot();
        if prometheus {
            format!(
                "{{\"type\":\"metrics\",\"format\":\"prometheus\",\"body\":\"{}\"}}",
                json_escape(&snapshot.to_prometheus())
            )
        } else {
            format!(
                "{{\"type\":\"metrics\",\"format\":\"json\",\"snapshot\":{}}}",
                snapshot.to_json().replace('\n', "")
            )
        }
    }
}

fn render_outputs<O: std::fmt::Debug>(report: &NetReport<O>) -> String {
    let mut out = String::from("[");
    for (i, output) in report.outputs().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", json_escape(&format!("{output:?}")));
    }
    out.push(']');
    out
}

/// The measured side of one completed job.
struct JobOutcome {
    line: String,
    execute_us: u64,
    certify_us: u64,
    recording_bytes: u64,
    peak_in_flight: u64,
    backpressure_waits: u64,
}

/// Runs one job to its result line (without the trailing newline).
///
/// # Errors
///
/// A rendered error message (the caller wraps it into an `"error"` line).
pub fn run_job(spec: &JobSpec, record_dir: Option<&Path>) -> Result<String, String> {
    execute_job(spec, record_dir).map(|outcome| outcome.line)
}

/// [`run_job`] plus the phase timings and serving counters the metrics
/// registry records.
fn execute_job(spec: &JobSpec, record_dir: Option<&Path>) -> Result<JobOutcome, String> {
    let topology = spec
        .algorithm
        .topology(spec.n, &spec.inputs)
        .map_err(|e| e.to_string())?;
    let procs = || {
        spec.algorithm
            .procs(spec.n, &spec.inputs)
            .expect("topology() already validated the job shape")
    };
    let execute_from = Instant::now();
    let report = run(&topology, procs(), &spec.options).map_err(|e| e.to_string())?;
    let execute_us = as_us(execute_from.elapsed());

    let certify_from = Instant::now();
    let conformance = if spec.conformance {
        let mut engine = AsyncEngine::new(topology.clone(), procs()).map_err(|e| e.to_string())?;
        let sim = engine
            .run(&mut SynchronizingScheduler)
            .map_err(|e| format!("reference simulation failed: {e}"))?;
        compare(&report, &sim).map_err(|e| e.to_string())?;
        "certified"
    } else {
        "skipped"
    };
    let certify_us = as_us(certify_from.elapsed());

    let mut recording_path = String::new();
    let mut recording_bytes = 0u64;
    if let Some(dir) = record_dir {
        let mut recorder = FlightRecorder::new(
            spec.n,
            format!("ringd {} {} n={}", spec.id, spec.algorithm, spec.n),
        )
        .with_engine("net");
        report.replay(&mut recorder);
        let mut recording = recorder.into_recording();
        recording.attach_wall_stamps(report.wall_stamps());
        let jsonl = recording.to_jsonl();
        recording_bytes = jsonl.len() as u64;
        let path = dir.join(format!("{}.jsonl", sanitize(&spec.id)));
        std::fs::write(&path, jsonl)
            .map_err(|e| format!("writing recording {}: {e}", path.display()))?;
        recording_path = path.display().to_string();
    }

    let mut line = String::from("{\"type\":\"result\"");
    let _ = write!(line, ",\"id\":\"{}\"", json_escape(&spec.id));
    let _ = write!(line, ",\"algorithm\":\"{}\"", spec.algorithm);
    let _ = write!(line, ",\"n\":{}", spec.n);
    let _ = write!(line, ",\"transport\":\"{}\"", spec.options.transport);
    let _ = write!(line, ",\"seed\":{}", spec.seed);
    let _ = write!(line, ",\"outputs\":{}", render_outputs(&report));
    let _ = write!(line, ",\"messages\":{}", report.messages);
    let _ = write!(line, ",\"bits\":{}", report.bits);
    let _ = write!(line, ",\"deliveries\":{}", report.deliveries);
    let _ = write!(line, ",\"dropped\":{}", report.dropped);
    let _ = write!(line, ",\"max_epoch\":{}", report.max_epoch);
    let _ = write!(line, ",\"conformance\":\"{conformance}\"");
    let _ = write!(line, ",\"recording\":\"{}\"", json_escape(&recording_path));
    line.push('}');
    Ok(JobOutcome {
        line,
        execute_us,
        certify_us,
        recording_bytes,
        peak_in_flight: report.peak_in_flight,
        backpressure_waits: report.backpressure_waits,
    })
}

/// Keeps job-supplied ids safe as file names.
fn sanitize(id: &str) -> String {
    id.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// One admitted job line waiting for (or back in) the queue.
struct QueuedJob {
    index: usize,
    line: String,
    enqueued: Instant,
    attempt: u32,
}

struct QueueState {
    jobs: VecDeque<QueuedJob>,
    closed: bool,
}

/// The bounded admission queue between the reader and the worker pool.
struct JobQueue {
    state: Mutex<QueueState>,
    /// Work available (or queue closed) — workers wait here.
    ready: Condvar,
    /// Space freed — the admitting reader waits here.
    space: Condvar,
    max: usize,
}

impl JobQueue {
    fn new(max: usize) -> JobQueue {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
            max: max.max(1),
        }
    }

    /// Admits one job, blocking while the queue is at capacity.
    fn push(&self, job: QueuedJob) {
        let mut state = self.state.lock().expect("job queue poisoned");
        while state.jobs.len() >= self.max && !state.closed {
            state = self.space.wait(state).expect("job queue poisoned");
        }
        state.jobs.push_back(job);
        self.ready.notify_one();
    }

    /// Returns a retried job to the queue. Bypasses the admission bound:
    /// a worker must never block on queue space while the reader blocks
    /// on the same space.
    fn requeue(&self, job: QueuedJob) {
        let mut state = self.state.lock().expect("job queue poisoned");
        state.jobs.push_back(job);
        self.ready.notify_one();
    }

    /// Takes the next job, parking until one arrives; `None` once the
    /// queue is closed and drained.
    fn pop(&self) -> Option<QueuedJob> {
        let mut state = self.state.lock().expect("job queue poisoned");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                self.space.notify_one();
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("job queue poisoned");
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().expect("job queue poisoned");
        state.closed = true;
        self.ready.notify_all();
        self.space.notify_all();
    }
}

fn ops_log(enabled: bool, body: std::fmt::Arguments<'_>) {
    if enabled {
        eprintln!("{{\"type\":\"log\",{body}}}");
    }
}

/// Serves one stream: admits job lines from `input` as they arrive into
/// a bounded queue drained by a worker pool, answers `metrics` control
/// requests in-line, and streams result lines (completion order) plus a
/// final summary line to `output`. Uses a caller-provided metrics
/// registry so embedders (and the `ringload` harness) can share it.
///
/// # Errors
///
/// Only I/O errors abort the stream; per-job failures become `"error"`
/// lines.
pub fn serve_with<R: BufRead, W: Write + Send>(
    input: R,
    output: W,
    options: &ServeOptions,
    metrics: &ServingMetrics,
) -> std::io::Result<ServeSummary> {
    let workers = if options.workers == 0 {
        std::thread::available_parallelism().map_or(2, usize::from)
    } else {
        options.workers
    };
    let queue = JobQueue::new(options.queue_limit());
    let sink = Mutex::new(output);
    let jobs = AtomicUsize::new(0);
    let ok = AtomicUsize::new(0);
    let failed = AtomicUsize::new(0);
    let requeued = AtomicUsize::new(0);
    let io_failure: Mutex<Option<std::io::Error>> = Mutex::new(None);
    let emit = |rendered: &str| {
        let mut guard = sink.lock().expect("output lock poisoned");
        if let Err(e) = writeln!(guard, "{rendered}") {
            let mut slot = io_failure.lock().expect("io failure lock poisoned");
            if slot.is_none() {
                *slot = Some(e);
            }
            return false;
        }
        true
    };

    std::thread::scope(|scope| {
        for worker in 0..workers {
            let queue = &queue;
            let metrics = &metrics;
            let jobs_ok = &ok;
            let jobs_failed = &failed;
            let jobs_requeued = &requeued;
            let emit = &emit;
            scope.spawn(move || {
                while let Some(job) = queue.pop() {
                    metrics.on_dequeued();
                    let queue_wait_us = as_us(job.enqueued.elapsed());
                    metrics.observe_phase(worker, "queue_wait", queue_wait_us);
                    ops_log(
                        options.log,
                        format_args!(
                            "\"event\":\"started\",\"job\":{},\"worker\":{worker},\
                             \"attempt\":{},\"queue_wait_us\":{queue_wait_us}",
                            job.index, job.attempt
                        ),
                    );
                    let parsed = JobSpec::parse(&job.line, job.index);
                    let retryable = parsed.is_ok();
                    let outcome =
                        parsed.and_then(|spec| execute_job(&spec, options.record_dir.as_deref()));
                    match outcome {
                        Ok(outcome) => {
                            metrics.observe_outcome(worker, &outcome);
                            metrics.on_settled(job.line.len(), true);
                            jobs_ok.fetch_add(1, Ordering::SeqCst);
                            ops_log(
                                options.log,
                                format_args!(
                                    "\"event\":\"finished\",\"job\":{},\"worker\":{worker},\
                                     \"ok\":true,\"execute_us\":{},\"certify_us\":{}",
                                    job.index, outcome.execute_us, outcome.certify_us
                                ),
                            );
                            if !emit(&outcome.line) {
                                break;
                            }
                        }
                        Err(error) if retryable && job.attempt < options.retries => {
                            metrics.busy_workers.fetch_sub(1, Ordering::Relaxed);
                            metrics.on_requeued();
                            jobs_requeued.fetch_add(1, Ordering::SeqCst);
                            ops_log(
                                options.log,
                                format_args!(
                                    "\"event\":\"requeued\",\"job\":{},\"worker\":{worker},\
                                     \"attempt\":{},\"error\":\"{}\"",
                                    job.index,
                                    job.attempt + 1,
                                    json_escape(&error)
                                ),
                            );
                            queue.requeue(QueuedJob {
                                index: job.index,
                                line: job.line,
                                enqueued: Instant::now(),
                                attempt: job.attempt + 1,
                            });
                        }
                        Err(error) => {
                            metrics.on_settled(job.line.len(), false);
                            jobs_failed.fetch_add(1, Ordering::SeqCst);
                            ops_log(
                                options.log,
                                format_args!(
                                    "\"event\":\"finished\",\"job\":{},\"worker\":{worker},\
                                     \"ok\":false,\"error\":\"{}\"",
                                    job.index,
                                    json_escape(&error)
                                ),
                            );
                            let line = format!(
                                "{{\"type\":\"error\",\"job\":{},\"error\":\"{}\"}}",
                                job.index,
                                json_escape(&error)
                            );
                            if !emit(&line) {
                                break;
                            }
                        }
                    }
                }
            });
        }

        // The reader: the calling thread admits lines while workers run.
        let mut index = 0usize;
        for line in input.lines() {
            let line = match line {
                Ok(line) => line,
                Err(e) => {
                    let mut slot = io_failure.lock().expect("io failure lock poisoned");
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                    break;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            // Control requests carry a "type" member; job lines never do.
            if line.contains("\"type\"") {
                if let Ok(value) = Value::parse(&line) {
                    if let Some(kind) = value.get("type").and_then(Value::as_str) {
                        let response = match kind {
                            "metrics" => {
                                let prometheus = value.get("format").and_then(Value::as_str)
                                    == Some("prometheus");
                                metrics.response_line(prometheus)
                            }
                            other => format!(
                                "{{\"type\":\"error\",\"error\":\"unknown control request type {}\"}}",
                                json_escape(&format!("{other:?}"))
                            ),
                        };
                        if !emit(&response) {
                            break;
                        }
                        continue;
                    }
                }
            }
            let i = index;
            index += 1;
            jobs.fetch_add(1, Ordering::SeqCst);
            if line.len() > options.line_limit() {
                metrics.on_rejected();
                failed.fetch_add(1, Ordering::SeqCst);
                let rendered = format!(
                    "{{\"type\":\"error\",\"job\":{i},\"error\":\"job line of {} bytes \
                     exceeds the {}-byte limit\"}}",
                    line.len(),
                    options.line_limit()
                );
                if !emit(&rendered) {
                    break;
                }
                continue;
            }
            ops_log(
                options.log,
                format_args!(
                    "\"event\":\"admitted\",\"job\":{i},\"bytes\":{}",
                    line.len()
                ),
            );
            metrics.on_admitted(line.len());
            queue.push(QueuedJob {
                index: i,
                line,
                enqueued: Instant::now(),
                attempt: 0,
            });
        }
        queue.close();
    });

    if let Some(e) = io_failure.into_inner().expect("io failure lock poisoned") {
        return Err(e);
    }
    let summary = ServeSummary {
        jobs: jobs.load(Ordering::SeqCst),
        ok: ok.load(Ordering::SeqCst),
        failed: failed.load(Ordering::SeqCst),
        requeued: requeued.load(Ordering::SeqCst),
    };
    let mut guard = sink.into_inner().expect("output lock poisoned");
    writeln!(
        guard,
        "{{\"type\":\"done\",\"jobs\":{},\"ok\":{},\"failed\":{},\"requeued\":{}}}",
        summary.jobs, summary.ok, summary.failed, summary.requeued
    )?;
    guard.flush()?;
    Ok(summary)
}

/// [`serve_with`] over a private metrics registry — the plain entry
/// point used by the `ringd` binary.
///
/// # Errors
///
/// Only I/O errors abort the stream; per-job failures become `"error"`
/// lines.
pub fn serve<R: BufRead, W: Write + Send>(
    input: R,
    output: W,
    options: &ServeOptions,
) -> std::io::Result<ServeSummary> {
    let workers = if options.workers == 0 {
        std::thread::available_parallelism().map_or(2, usize::from)
    } else {
        options.workers
    };
    let metrics = ServingMetrics::new(workers);
    serve_with(input, output, options, &metrics)
}

#[cfg(test)]
mod tests {
    use super::{default_inputs, serve, JobSpec, ServeOptions, ServeSummary, ServingMetrics};
    use crate::json::Value;
    use anonring_core::algorithms::driver::Audited;
    use anonring_net::Transport;
    use anonring_sim::telemetry::MetricId;

    #[test]
    fn job_lines_parse_with_defaults() {
        let spec = JobSpec::parse(r#"{"algorithm":"sync_and","n":3}"#, 7).expect("parses");
        assert_eq!(spec.id, "job-7");
        assert_eq!(spec.algorithm, Audited::SyncAnd);
        assert_eq!(spec.inputs, default_inputs(Audited::SyncAnd, 3));
        assert_eq!(spec.options.transport, Transport::Threads);
        assert!(spec.conformance);
        assert_eq!(spec.options.timeout.as_millis(), 10_000);
    }

    #[test]
    fn job_lines_honor_explicit_fields() {
        let line = r#"{"id":"x1","algorithm":"orientation","n":4,"inputs":[1,0,1,1],
            "seed":42,"capacity":2,"transport":"tcp","timeout_ms":500,"conformance":false}"#;
        let spec = JobSpec::parse(&line.replace('\n', " "), 0).expect("parses");
        assert_eq!(spec.id, "x1");
        assert_eq!(spec.inputs, vec![1, 0, 1, 1]);
        assert_eq!(spec.options.jitter_seed, 42);
        assert_eq!(spec.options.capacity, 2);
        assert_eq!(spec.options.transport, Transport::TcpLoopback);
        assert_eq!(spec.options.timeout.as_millis(), 500);
        assert!(!spec.conformance);
    }

    #[test]
    fn malformed_jobs_are_named_errors() {
        assert!(JobSpec::parse("{}", 0).unwrap_err().contains("algorithm"));
        assert!(JobSpec::parse(r#"{"algorithm":"nope","n":3}"#, 0)
            .unwrap_err()
            .contains("unknown algorithm"));
        assert!(JobSpec::parse(r#"{"algorithm":"sync_and"}"#, 0)
            .unwrap_err()
            .contains("ring size"));
    }

    #[test]
    fn serve_streams_results_and_a_summary() {
        let batch = concat!(
            r#"{"id":"a","algorithm":"sync_and","n":3,"inputs":[1,1,1]}"#,
            "\n",
            r#"{"id":"b","algorithm":"async_input_dist","n":4}"#,
            "\n",
            r#"{"broken"#,
            "\n"
        );
        let mut out = Vec::new();
        let summary = serve(
            batch.as_bytes(),
            &mut out,
            &ServeOptions {
                workers: 2,
                ..ServeOptions::default()
            },
        )
        .expect("serves");
        assert_eq!(
            summary,
            ServeSummary {
                jobs: 3,
                ok: 2,
                failed: 1,
                requeued: 0
            }
        );
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        for line in &lines {
            Value::parse(line).expect("every emitted line is JSON");
        }
        let last = Value::parse(lines[3]).expect("summary");
        assert_eq!(last.get("type").and_then(Value::as_str), Some("done"));
        assert_eq!(last.get("ok").and_then(Value::as_u64), Some(2));
        // The sync_and job of all-ones certifies and ANDs to 1.
        let a = lines
            .iter()
            .map(|l| Value::parse(l).expect("json"))
            .find(|v| v.get("id").and_then(Value::as_str) == Some("a"))
            .expect("job a reported");
        assert_eq!(
            a.get("conformance").and_then(Value::as_str),
            Some("certified")
        );
        let outputs = a.get("outputs").and_then(Value::as_array).expect("outputs");
        assert_eq!(outputs.len(), 3);
        assert!(
            outputs.iter().all(|o| o.as_str() == Some("Bit(1)")),
            "{outputs:?}"
        );
    }

    #[test]
    fn per_job_timeouts_fail_the_job_not_the_batch() {
        // A 0 ms budget cannot finish; the job errors, the batch survives.
        let batch = concat!(
            r#"{"id":"t","algorithm":"sync_and","n":8,"timeout_ms":0}"#,
            "\n",
            r#"{"id":"fine","algorithm":"sync_and","n":3,"inputs":[1,1,1]}"#,
            "\n"
        );
        let mut out = Vec::new();
        let summary = serve(
            batch.as_bytes(),
            &mut out,
            &ServeOptions {
                workers: 1,
                ..ServeOptions::default()
            },
        )
        .expect("serves");
        assert_eq!(summary.ok, 1);
        assert_eq!(summary.failed, 1);
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("\"type\":\"error\""), "{text}");
        assert!(text.contains("budget"), "{text}");
    }

    #[test]
    fn retries_requeue_failed_runs_before_erroring() {
        // A 0 ms budget fails every attempt: 1 retry → 1 requeue event,
        // one error line, and the job still counts once.
        let batch = concat!(
            r#"{"id":"t","algorithm":"sync_and","n":8,"timeout_ms":0}"#,
            "\n"
        );
        let mut out = Vec::new();
        let summary = serve(
            batch.as_bytes(),
            &mut out,
            &ServeOptions {
                workers: 1,
                retries: 1,
                ..ServeOptions::default()
            },
        )
        .expect("serves");
        assert_eq!(
            summary,
            ServeSummary {
                jobs: 1,
                ok: 0,
                failed: 1,
                requeued: 1
            }
        );
        let text = String::from_utf8(out).expect("utf8");
        assert_eq!(text.matches("\"type\":\"error\"").count(), 1, "{text}");
        assert!(text.contains("\"requeued\":1"), "{text}");
    }

    #[test]
    fn oversized_lines_error_and_the_stream_continues() {
        let huge = format!(
            r#"{{"id":"big","algorithm":"sync_and","n":3,"junk":"{}"}}"#,
            "x".repeat(512)
        );
        let batch = format!(
            "{huge}\n{}\n",
            r#"{"id":"fine","algorithm":"sync_and","n":3,"inputs":[1,1,1]}"#
        );
        let mut out = Vec::new();
        let summary = serve(
            batch.as_bytes(),
            &mut out,
            &ServeOptions {
                workers: 1,
                max_line_bytes: 256,
                ..ServeOptions::default()
            },
        )
        .expect("serves");
        assert_eq!(summary.ok, 1);
        assert_eq!(summary.failed, 1);
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("exceeds the 256-byte limit"), "{text}");
        assert!(text.contains("\"id\":\"fine\""), "{text}");
    }

    #[test]
    fn metrics_requests_answer_inline_in_both_formats() {
        let batch = concat!(
            r#"{"id":"a","algorithm":"sync_and","n":3,"inputs":[1,1,1]}"#,
            "\n",
            r#"{"type":"metrics"}"#,
            "\n",
            r#"{"type":"metrics","format":"prometheus"}"#,
            "\n"
        );
        let mut out = Vec::new();
        let summary = serve(
            batch.as_bytes(),
            &mut out,
            &ServeOptions {
                workers: 1,
                ..ServeOptions::default()
            },
        )
        .expect("serves");
        // Control requests are not jobs.
        assert_eq!(summary.jobs, 1);
        assert_eq!(summary.ok, 1);
        let text = String::from_utf8(out).expect("utf8");
        let metrics_lines: Vec<Value> = text
            .lines()
            .map(|l| Value::parse(l).expect("every line is JSON"))
            .filter(|v| v.get("type").and_then(Value::as_str) == Some("metrics"))
            .collect();
        assert_eq!(metrics_lines.len(), 2, "{text}");
        let json_fmt = &metrics_lines[0];
        assert_eq!(json_fmt.get("format").and_then(Value::as_str), Some("json"));
        let snapshot = json_fmt.get("snapshot").expect("embedded snapshot");
        let accepted = snapshot
            .get("counters")
            .and_then(Value::as_array)
            .expect("counters")
            .iter()
            .find(|c| c.get("name").and_then(Value::as_str) == Some("ringd_jobs_accepted_total"))
            .expect("accepted counter");
        assert_eq!(accepted.get("value").and_then(Value::as_u64), Some(1));
        let prom = &metrics_lines[1];
        assert_eq!(
            prom.get("format").and_then(Value::as_str),
            Some("prometheus")
        );
        let body = prom.get("body").and_then(Value::as_str).expect("body");
        assert!(
            body.contains("# TYPE ringd_jobs_accepted_total counter"),
            "{body}"
        );
        assert!(body.contains("ringd_jobs_accepted_total 1"), "{body}");
        assert!(body.contains("# TYPE ringd_queue_depth gauge"), "{body}");
    }

    #[test]
    fn unknown_control_requests_are_named_errors() {
        let batch = concat!(r#"{"type":"shutdown"}"#, "\n");
        let mut out = Vec::new();
        let summary = serve(
            batch.as_bytes(),
            &mut out,
            &ServeOptions {
                workers: 1,
                ..ServeOptions::default()
            },
        )
        .expect("serves");
        assert_eq!(summary.jobs, 0);
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("unknown control request type"), "{text}");
    }

    #[test]
    fn serving_metrics_settle_after_the_stream_drains() {
        let batch = concat!(
            r#"{"id":"a","algorithm":"sync_and","n":3,"inputs":[1,1,1]}"#,
            "\n",
            r#"{"id":"b","algorithm":"start_sync","n":4}"#,
            "\n",
            r#"{"broken"#,
            "\n"
        );
        let metrics = ServingMetrics::new(2);
        let mut out = Vec::new();
        super::serve_with(
            batch.as_bytes(),
            &mut out,
            &ServeOptions {
                workers: 2,
                ..ServeOptions::default()
            },
            &metrics,
        )
        .expect("serves");
        let reg = metrics.snapshot();
        assert_eq!(
            reg.counter(&MetricId::plain("ringd_jobs_accepted_total")),
            3
        );
        assert_eq!(
            reg.counter(&MetricId::plain("ringd_jobs_completed_total")),
            2
        );
        assert_eq!(reg.counter(&MetricId::plain("ringd_jobs_failed_total")), 1);
        assert_eq!(
            reg.gauge(&MetricId::plain("ringd_queue_depth")),
            Some(0),
            "queue drained"
        );
        assert_eq!(reg.gauge(&MetricId::plain("ringd_busy_workers")), Some(0));
        assert_eq!(
            reg.gauge(&MetricId::plain("ringd_live_job_bytes")),
            Some(0),
            "no job bytes remain resident"
        );
        for phase in ["queue_wait", "execute", "certify"] {
            let h = reg
                .histogram(&MetricId::with_labels(
                    "ringd_job_latency_us",
                    &[("phase", phase)],
                ))
                .expect("phase histogram");
            // The malformed line never reaches execute/certify.
            let expected = if phase == "queue_wait" { 3 } else { 2 };
            assert_eq!(h.count, expected, "{phase}");
        }
    }

    #[test]
    fn recordings_land_in_the_record_dir_with_wall_stamps() {
        let dir = std::env::temp_dir().join("anonring-ringd-test-recordings");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let batch = r#"{"id":"rec/1","algorithm":"start_sync","n":3}"#;
        let mut out = Vec::new();
        let summary = serve(
            batch.as_bytes(),
            &mut out,
            &ServeOptions {
                workers: 1,
                record_dir: Some(dir.clone()),
                ..ServeOptions::default()
            },
        )
        .expect("serves");
        assert_eq!(summary.ok, 1);
        let recorded = std::fs::read_to_string(dir.join("rec_1.jsonl")).expect("recording file");
        assert!(recorded.contains("\"engine\":\"net\""), "{recorded}");
        assert!(recorded.contains("\"wall\":"), "{recorded}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
