//! The `ringd` job server: batched ring jobs over real transports.
//!
//! `ringd` reads one JSON job per line — `{"id": …, "algorithm": …,
//! "n": …, "inputs": […], "seed": …}` — runs each on the
//! [`anonring_net`] real-transport runtime, certifies it against the
//! asynchronous simulator (the conformance oracle; on by default), and
//! streams one JSON result per line. A worker pool shards the batch;
//! per-job wall-clock budgets abort runaway jobs without taking the
//! server down. With a recording directory configured, every job also
//! leaves a v2 flight-recorder JSONL stamped `"engine":"net"` that the
//! `tracer` CLI and the causal-DAG tooling consume unchanged.
//!
//! ## Job schema (one JSON object per line)
//!
//! | field         | type         | default                       |
//! |---------------|--------------|-------------------------------|
//! | `id`          | string       | `job-<line number>`           |
//! | `algorithm`   | string       | — (required; audit-table name)|
//! | `n`           | integer      | — (required; ≥ 2)             |
//! | `inputs`      | `[int]`      | audit harness mixed pattern   |
//! | `seed`        | integer      | `0` (delivery-jitter seed)    |
//! | `capacity`    | integer      | `8` (per-link buffer)         |
//! | `max_delay_us`| integer      | `0` (link-delay bound)        |
//! | `transport`   | string       | `"threads"` (or `"tcp"`)      |
//! | `timeout_ms`  | integer      | `10000`                       |
//! | `conformance` | bool         | `true`                        |
//!
//! ## Result stream
//!
//! One line per job, in completion order (`"type"` is `"result"` or
//! `"error"`), then a final `{"type":"done", …}` summary line.

use std::fmt::Write as _;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use anonring_core::algorithms::driver::Audited;
use anonring_net::conformance::compare;
use anonring_net::{run, NetOptions, NetReport, Transport};
use anonring_sim::r#async::{AsyncEngine, SynchronizingScheduler};
use anonring_sim::telemetry::FlightRecorder;

use crate::json::{json_escape, Value};

/// One parsed job description.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Caller-chosen job identifier, echoed in the result line.
    pub id: String,
    /// Which audited algorithm to run.
    pub algorithm: Audited,
    /// Ring size.
    pub n: usize,
    /// Per-processor inputs (`inputs.len() == n`).
    pub inputs: Vec<u8>,
    /// Delivery-jitter seed.
    pub seed: u64,
    /// Net-runtime options derived from the job fields.
    pub options: NetOptions,
    /// Whether to certify against the simulator.
    pub conformance: bool,
}

fn get_u64(value: &Value, key: &str, default: u64) -> Result<u64, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("{key} must be an integer")),
    }
}

impl JobSpec {
    /// Parses one job line. Line numbers (zero-based) supply the default
    /// job id.
    ///
    /// # Errors
    ///
    /// A message naming the malformed field.
    pub fn parse(line: &str, line_number: usize) -> Result<JobSpec, String> {
        let value = Value::parse(line)?;
        let id = match value.get("id") {
            None | Some(Value::Null) => format!("job-{line_number}"),
            Some(v) => v
                .as_str()
                .ok_or_else(|| "id must be a string".to_string())?
                .to_string(),
        };
        let name = value
            .get("algorithm")
            .and_then(Value::as_str)
            .ok_or_else(|| "missing algorithm name".to_string())?;
        let algorithm = Audited::from_name(name)
            .ok_or_else(|| format!("unknown algorithm {name:?} (audit-table names only)"))?;
        let n = usize::try_from(
            value
                .get("n")
                .and_then(Value::as_u64)
                .ok_or_else(|| "missing ring size n".to_string())?,
        )
        .map_err(|_| "n overflows usize".to_string())?;
        let inputs = match value.get("inputs") {
            None | Some(Value::Null) => default_inputs(algorithm, n),
            Some(v) => v
                .as_array()
                .ok_or_else(|| "inputs must be an array".to_string())?
                .iter()
                .map(|item| {
                    item.as_u64()
                        .and_then(|b| u8::try_from(b).ok())
                        .ok_or_else(|| "inputs must be bytes (0–255)".to_string())
                })
                .collect::<Result<Vec<u8>, String>>()?,
        };
        let seed = get_u64(&value, "seed", 0)?;
        let transport = match value.get("transport") {
            None | Some(Value::Null) => Transport::Threads,
            Some(v) => {
                let name = v
                    .as_str()
                    .ok_or_else(|| "transport must be a string".to_string())?;
                Transport::from_name(name)
                    .ok_or_else(|| format!("unknown transport {name:?} (threads|tcp)"))?
            }
        };
        let options = NetOptions {
            capacity: usize::try_from(get_u64(&value, "capacity", 8)?)
                .map_err(|_| "capacity overflows usize".to_string())?,
            jitter_seed: seed,
            max_delay_us: get_u64(&value, "max_delay_us", 0)?,
            transport,
            timeout: Duration::from_millis(get_u64(&value, "timeout_ms", 10_000)?),
        };
        let conformance = match value.get("conformance") {
            None | Some(Value::Null) => true,
            Some(Value::Bool(b)) => *b,
            Some(_) => return Err("conformance must be a boolean".to_string()),
        };
        Ok(JobSpec {
            id,
            algorithm,
            n,
            inputs,
            seed,
            options,
            conformance,
        })
    }
}

/// The audit harness's deterministic mixed input pattern — bits for the
/// bit-input algorithms, spread bytes for the §4.1 distribution.
#[must_use]
pub fn default_inputs(algorithm: Audited, n: usize) -> Vec<u8> {
    (0..n)
        .map(|i| {
            let mixed = (i * 2654435761) >> 7;
            if algorithm.wants_bit_inputs() {
                (mixed & 1) as u8
            } else {
                (mixed & 0xff) as u8
            }
        })
        .collect()
}

/// Server configuration.
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Worker-pool size; `0` means one worker per available core.
    pub workers: usize,
    /// Where to write one per-job flight recording (`<id>.jsonl`), if
    /// anywhere.
    pub record_dir: Option<PathBuf>,
}

/// End-of-batch accounting, also emitted as the final `"done"` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Job lines consumed.
    pub jobs: usize,
    /// Jobs that produced a result.
    pub ok: usize,
    /// Jobs that failed (parse, run, conformance or recording I/O).
    pub failed: usize,
}

fn render_outputs<O: std::fmt::Debug>(report: &NetReport<O>) -> String {
    let mut out = String::from("[");
    for (i, output) in report.outputs().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", json_escape(&format!("{output:?}")));
    }
    out.push(']');
    out
}

/// Runs one job to its result line (without the trailing newline).
///
/// # Errors
///
/// A rendered error message (the caller wraps it into an `"error"` line).
pub fn run_job(spec: &JobSpec, record_dir: Option<&Path>) -> Result<String, String> {
    let topology = spec
        .algorithm
        .topology(spec.n, &spec.inputs)
        .map_err(|e| e.to_string())?;
    let procs = || {
        spec.algorithm
            .procs(spec.n, &spec.inputs)
            .expect("topology() already validated the job shape")
    };
    let report = run(&topology, procs(), &spec.options).map_err(|e| e.to_string())?;

    let conformance = if spec.conformance {
        let mut engine = AsyncEngine::new(topology.clone(), procs()).map_err(|e| e.to_string())?;
        let sim = engine
            .run(&mut SynchronizingScheduler)
            .map_err(|e| format!("reference simulation failed: {e}"))?;
        compare(&report, &sim).map_err(|e| e.to_string())?;
        "certified"
    } else {
        "skipped"
    };

    let mut recording_path = String::new();
    if let Some(dir) = record_dir {
        let mut recorder = FlightRecorder::new(
            spec.n,
            format!("ringd {} {} n={}", spec.id, spec.algorithm, spec.n),
        )
        .with_engine("net");
        report.replay(&mut recorder);
        let path = dir.join(format!("{}.jsonl", sanitize(&spec.id)));
        std::fs::write(&path, recorder.to_jsonl())
            .map_err(|e| format!("writing recording {}: {e}", path.display()))?;
        recording_path = path.display().to_string();
    }

    let mut line = String::from("{\"type\":\"result\"");
    let _ = write!(line, ",\"id\":\"{}\"", json_escape(&spec.id));
    let _ = write!(line, ",\"algorithm\":\"{}\"", spec.algorithm);
    let _ = write!(line, ",\"n\":{}", spec.n);
    let _ = write!(line, ",\"transport\":\"{}\"", spec.options.transport);
    let _ = write!(line, ",\"seed\":{}", spec.seed);
    let _ = write!(line, ",\"outputs\":{}", render_outputs(&report));
    let _ = write!(line, ",\"messages\":{}", report.messages);
    let _ = write!(line, ",\"bits\":{}", report.bits);
    let _ = write!(line, ",\"deliveries\":{}", report.deliveries);
    let _ = write!(line, ",\"dropped\":{}", report.dropped);
    let _ = write!(line, ",\"max_epoch\":{}", report.max_epoch);
    let _ = write!(line, ",\"conformance\":\"{conformance}\"");
    let _ = write!(line, ",\"recording\":\"{}\"", json_escape(&recording_path));
    line.push('}');
    Ok(line)
}

/// Keeps job-supplied ids safe as file names.
fn sanitize(id: &str) -> String {
    id.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Serves one batch: reads job lines from `input`, shards them across a
/// worker pool, and streams result lines (completion order) plus a final
/// summary line to `output`.
///
/// # Errors
///
/// Only output I/O errors abort the batch; per-job failures become
/// `"error"` lines.
pub fn serve<R: BufRead, W: Write + Send>(
    input: R,
    output: W,
    options: &ServeOptions,
) -> std::io::Result<ServeSummary> {
    let lines: Vec<String> = input
        .lines()
        .collect::<std::io::Result<Vec<String>>>()?
        .into_iter()
        .filter(|line| !line.trim().is_empty())
        .collect();
    let workers = if options.workers == 0 {
        std::thread::available_parallelism().map_or(2, usize::from)
    } else {
        options.workers
    }
    .min(lines.len().max(1));

    let sink = Mutex::new(output);
    let next = AtomicUsize::new(0);
    let ok = AtomicUsize::new(0);
    let failed = AtomicUsize::new(0);
    let io_failure: Mutex<Option<std::io::Error>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                let Some(line) = lines.get(i) else { break };
                let outcome = JobSpec::parse(line, i)
                    .and_then(|spec| run_job(&spec, options.record_dir.as_deref()));
                let rendered = match outcome {
                    Ok(result) => {
                        ok.fetch_add(1, Ordering::SeqCst);
                        result
                    }
                    Err(error) => {
                        failed.fetch_add(1, Ordering::SeqCst);
                        format!(
                            "{{\"type\":\"error\",\"job\":{i},\"error\":\"{}\"}}",
                            json_escape(&error)
                        )
                    }
                };
                let mut guard = sink.lock().expect("output lock poisoned");
                if let Err(e) = writeln!(guard, "{rendered}") {
                    *io_failure.lock().expect("io failure lock poisoned") = Some(e);
                    break;
                }
            });
        }
    });

    if let Some(e) = io_failure.into_inner().expect("io failure lock poisoned") {
        return Err(e);
    }
    let summary = ServeSummary {
        jobs: lines.len(),
        ok: ok.load(Ordering::SeqCst),
        failed: failed.load(Ordering::SeqCst),
    };
    let mut guard = sink.into_inner().expect("output lock poisoned");
    writeln!(
        guard,
        "{{\"type\":\"done\",\"jobs\":{},\"ok\":{},\"failed\":{}}}",
        summary.jobs, summary.ok, summary.failed
    )?;
    guard.flush()?;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::{default_inputs, serve, JobSpec, ServeOptions, ServeSummary};
    use crate::json::Value;
    use anonring_core::algorithms::driver::Audited;
    use anonring_net::Transport;

    #[test]
    fn job_lines_parse_with_defaults() {
        let spec = JobSpec::parse(r#"{"algorithm":"sync_and","n":3}"#, 7).expect("parses");
        assert_eq!(spec.id, "job-7");
        assert_eq!(spec.algorithm, Audited::SyncAnd);
        assert_eq!(spec.inputs, default_inputs(Audited::SyncAnd, 3));
        assert_eq!(spec.options.transport, Transport::Threads);
        assert!(spec.conformance);
        assert_eq!(spec.options.timeout.as_millis(), 10_000);
    }

    #[test]
    fn job_lines_honor_explicit_fields() {
        let line = r#"{"id":"x1","algorithm":"orientation","n":4,"inputs":[1,0,1,1],
            "seed":42,"capacity":2,"transport":"tcp","timeout_ms":500,"conformance":false}"#;
        let spec = JobSpec::parse(&line.replace('\n', " "), 0).expect("parses");
        assert_eq!(spec.id, "x1");
        assert_eq!(spec.inputs, vec![1, 0, 1, 1]);
        assert_eq!(spec.options.jitter_seed, 42);
        assert_eq!(spec.options.capacity, 2);
        assert_eq!(spec.options.transport, Transport::TcpLoopback);
        assert_eq!(spec.options.timeout.as_millis(), 500);
        assert!(!spec.conformance);
    }

    #[test]
    fn malformed_jobs_are_named_errors() {
        assert!(JobSpec::parse("{}", 0).unwrap_err().contains("algorithm"));
        assert!(JobSpec::parse(r#"{"algorithm":"nope","n":3}"#, 0)
            .unwrap_err()
            .contains("unknown algorithm"));
        assert!(JobSpec::parse(r#"{"algorithm":"sync_and"}"#, 0)
            .unwrap_err()
            .contains("ring size"));
    }

    #[test]
    fn serve_streams_results_and_a_summary() {
        let batch = concat!(
            r#"{"id":"a","algorithm":"sync_and","n":3,"inputs":[1,1,1]}"#,
            "\n",
            r#"{"id":"b","algorithm":"async_input_dist","n":4}"#,
            "\n",
            r#"{"broken"#,
            "\n"
        );
        let mut out = Vec::new();
        let summary = serve(
            batch.as_bytes(),
            &mut out,
            &ServeOptions {
                workers: 2,
                record_dir: None,
            },
        )
        .expect("serves");
        assert_eq!(
            summary,
            ServeSummary {
                jobs: 3,
                ok: 2,
                failed: 1
            }
        );
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        for line in &lines {
            Value::parse(line).expect("every emitted line is JSON");
        }
        let last = Value::parse(lines[3]).expect("summary");
        assert_eq!(last.get("type").and_then(Value::as_str), Some("done"));
        assert_eq!(last.get("ok").and_then(Value::as_u64), Some(2));
        // The sync_and job of all-ones certifies and ANDs to 1.
        let a = lines
            .iter()
            .map(|l| Value::parse(l).expect("json"))
            .find(|v| v.get("id").and_then(Value::as_str) == Some("a"))
            .expect("job a reported");
        assert_eq!(
            a.get("conformance").and_then(Value::as_str),
            Some("certified")
        );
        let outputs = a.get("outputs").and_then(Value::as_array).expect("outputs");
        assert_eq!(outputs.len(), 3);
        assert!(
            outputs.iter().all(|o| o.as_str() == Some("Bit(1)")),
            "{outputs:?}"
        );
    }

    #[test]
    fn per_job_timeouts_fail_the_job_not_the_batch() {
        // A 0 ms budget cannot finish; the job errors, the batch survives.
        let batch = concat!(
            r#"{"id":"t","algorithm":"sync_and","n":8,"timeout_ms":0}"#,
            "\n",
            r#"{"id":"fine","algorithm":"sync_and","n":3,"inputs":[1,1,1]}"#,
            "\n"
        );
        let mut out = Vec::new();
        let summary = serve(
            batch.as_bytes(),
            &mut out,
            &ServeOptions {
                workers: 1,
                record_dir: None,
            },
        )
        .expect("serves");
        assert_eq!(summary.ok, 1);
        assert_eq!(summary.failed, 1);
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("\"type\":\"error\""), "{text}");
        assert!(text.contains("budget"), "{text}");
    }

    #[test]
    fn recordings_land_in_the_record_dir() {
        let dir = std::env::temp_dir().join("anonring-ringd-test-recordings");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let batch = r#"{"id":"rec/1","algorithm":"start_sync","n":3}"#;
        let mut out = Vec::new();
        let summary = serve(
            batch.as_bytes(),
            &mut out,
            &ServeOptions {
                workers: 1,
                record_dir: Some(dir.clone()),
            },
        )
        .expect("serves");
        assert_eq!(summary.ok, 1);
        let recorded = std::fs::read_to_string(dir.join("rec_1.jsonl")).expect("recording file");
        assert!(recorded.contains("\"engine\":\"net\""), "{recorded}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
