//! E18: labelled versus anonymous rings — the paper's framing experiment.

use anonring_baselines::{chang_roberts, flood_all, hirschberg_sinclair, leader_collect, peterson};
use anonring_core::algorithms::async_input_dist;
use anonring_sim::r#async::SynchronizingScheduler;
use anonring_sim::RingConfig;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};

use crate::table::Table;

/// E18: with distinct labels, extrema finding and input distribution cost
/// `Θ(n log n)` (Hirschberg–Sinclair / Peterson + leader collection);
/// without labels — or with repeated inputs, Corollary 5.2 — the cost is
/// `Θ(n²)`.
#[must_use]
pub fn e18_labeled_vs_anonymous() -> Table {
    let mut t = Table::new(
        "E18",
        "labelled Θ(n log n) vs anonymous Θ(n²): message counts for full input distribution",
        &[
            "n",
            "HS elect",
            "Peterson",
            "ChangRoberts",
            "HS+collect",
            "anonymous §4.1",
            "flood oracle",
        ],
    );
    let mut rng = StdRng::seed_from_u64(18);
    let mut ok = true;
    let mut prev_ratio = 0.0;
    for n in [8usize, 16, 32, 64, 128, 256] {
        let mut ids: Vec<u64> = (1..=n as u64).collect();
        ids.shuffle(&mut rng);
        let config = RingConfig::oriented(ids.clone());
        let hs = hirschberg_sinclair::run(&config, &mut SynchronizingScheduler).unwrap();
        let pt = peterson::run(&config, &mut SynchronizingScheduler).unwrap();
        let cr = chang_roberts::run(&config, &mut SynchronizingScheduler).unwrap();
        let (_, full, _) = leader_collect::elect_and_distribute(&config).unwrap();
        let flood = flood_all::run(&config, &mut SynchronizingScheduler).unwrap();
        let anon_config = RingConfig::oriented(vec![1u8; n]);
        let anon = async_input_dist::run(&anon_config, &mut SynchronizingScheduler).unwrap();
        let ratio = anon.messages as f64 / full as f64;
        ok &= ratio >= prev_ratio * 0.9; // the gap keeps widening
        prev_ratio = ratio;
        t.push(vec![
            n.to_string(),
            hs.messages.to_string(),
            pt.messages.to_string(),
            cr.messages.to_string(),
            full.to_string(),
            anon.messages.to_string(),
            flood.messages.to_string(),
        ]);
    }
    t.set_verdict(if ok {
        "the anonymous/labelled gap grows like n/log n, exactly the paper's contrast \
         (Corollary 5.2 vs [5, 8, 12])"
    } else {
        "VIOLATION"
    });
    t
}
