//! Deterministic parallel sweep driver.
//!
//! Experiment grids (one cell per ring size × variant) are embarrassingly
//! parallel once each cell seeds its own RNG, so this module fans a list of
//! independent jobs over OS threads with `std::thread::scope` — no external
//! dependencies, no work queues to tune.
//!
//! **Determinism contract:** results are written to the slot matching each
//! job's index, so the output order — and therefore every rendered table and
//! JSON artifact — is byte-identical no matter how many worker threads run
//! or how the scheduler interleaves them. `sweep_determinism` in
//! `crates/bench/tests` pins this by comparing a 1-thread and an N-thread
//! run of the E1/E3 grids.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads a sweep uses by default: the machine's
/// available parallelism, but at least 2 so the parallel path is always
/// exercised (single-core CI included).
#[must_use]
pub fn default_threads() -> NonZeroUsize {
    let available = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    NonZeroUsize::new(available.max(2)).expect("max(2) is nonzero")
}

/// Run `job` over every element of `items` on `threads` worker threads and
/// return the results in input order.
///
/// Jobs must be independent: `job` gets `(index, &item)` and must derive any
/// randomness from that (e.g. via a per-cell seed), never from shared
/// mutable state. Panics in a job propagate after the scope joins.
pub fn sweep<T, R, F>(items: &[T], threads: NonZeroUsize, job: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.get().min(items.len().max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = job(i, item);
                *slots[i].lock().expect("sweep slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("sweep slot poisoned")
                .expect("every slot filled after scope join")
        })
        .collect()
}

/// Sugar for the common grid case: `sweep` with the default thread count.
pub fn sweep_default<T, R, F>(items: &[T], job: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    sweep(items, default_threads(), job)
}

/// A stable per-cell RNG seed: FNV-1a over the experiment tag mixed with
/// the cell index. Each grid cell seeds its own `StdRng` from this, which
/// is what makes cells schedulable in any order.
#[must_use]
pub fn cell_seed(experiment: &str, cell: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in experiment.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ cell.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

#[cfg(test)]
mod tests {
    use super::{cell_seed, sweep, sweep_default};
    use std::num::NonZeroUsize;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let squares = sweep_default(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * x
        });
        assert_eq!(squares, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let items: Vec<u64> = (0..64).collect();
        let one = sweep(&items, NonZeroUsize::new(1).unwrap(), |_, &x| x.pow(3));
        let eight = sweep(&items, NonZeroUsize::new(8).unwrap(), |_, &x| x.pow(3));
        assert_eq!(one, eight);
    }

    #[test]
    fn empty_and_singleton_sweeps_work() {
        let none: Vec<u64> = sweep_default(&[], |_, &x: &u64| x);
        assert!(none.is_empty());
        assert_eq!(sweep_default(&[7u64], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn cell_seeds_are_distinct_across_cells_and_experiments() {
        assert_ne!(cell_seed("E1", 0), cell_seed("E1", 1));
        assert_ne!(cell_seed("E1", 0), cell_seed("E3", 0));
    }
}
