//! Beyond-the-ring experiment: one-bit broadcast in anonymous dynamic
//! networks (E23).
//!
//! The first audited family running on a non-ring topology: flooding over
//! the seeded connectivity adversary (see
//! [`anonring_core::algorithms::dyn_broadcast`]). Every active wire
//! carries one bit in each direction per round, so the metered message
//! count must equal `2·Σ_r |E_r|` exactly, and with Θ(n) active edges per
//! round for `n − 1` rounds the curve is Θ(n²) single-bit messages.

use anonring_core::algorithms::dyn_broadcast::{self, audited_topology};
use anonring_sim::r#async::SynchronizingScheduler;

use crate::table::{f, CellMetrics, Table};

/// E23: dynamic-network one-bit broadcast — messages = `2·Σ_r |E_r|`
/// exactly, Θ(n²) under the audited adversary, and every processor
/// outputs the OR of the inputs.
#[must_use]
pub fn e23_dyn_broadcast() -> Table {
    let mut t = Table::new(
        "E23",
        "dynamic-network one-bit broadcast: messages = 2·Σ|E_r|, Θ(n²)",
        &[
            "n",
            "inputs",
            "measured",
            "2·Σ|E_r|",
            "messages/n²",
            "agreed output",
        ],
    );
    let mut ok = true;
    for n in [8usize, 16, 32, 64, 128] {
        for (label, inputs) in [
            ("single one", {
                let mut v = vec![0u8; n];
                v[n / 2] = 1;
                v
            }),
            ("all zeros", vec![0u8; n]),
        ] {
            let topology = audited_topology(n).expect("audited adversary");
            let expected: u64 = (0..topology.rounds() as u64)
                .map(|r| 2 * topology.active_edges(r) as u64)
                .sum();
            let want = u8::from(inputs.iter().any(|&b| b != 0));
            let report =
                dyn_broadcast::run(&topology, &inputs, &mut SynchronizingScheduler).unwrap();
            let agreed = report.outputs().iter().all(|&o| o == want);
            ok &= agreed && report.messages == expected && report.bits == report.messages;
            t.push(vec![
                n.to_string(),
                label.into(),
                report.messages.to_string(),
                expected.to_string(),
                f(report.messages as f64 / (n * n) as f64),
                if agreed {
                    format!("yes ({want})")
                } else {
                    "DISAGREED".into()
                },
            ]);
            t.push_metric(CellMetrics {
                n: n as u64,
                label: label.into(),
                messages: report.messages,
                bits: report.bits,
                time: report.max_epoch,
            });
        }
    }
    t.set_verdict(if ok {
        "every run floods 2·Σ|E_r| one-bit messages and agrees on the OR — \
         the quadratic curve, off the ring"
    } else {
        "VIOLATION: a run missed the active-edge total or disagreed on the OR"
    });
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e23_holds_the_active_edge_identity() {
        let t = e23_dyn_broadcast();
        assert!(t.verdict.contains("quadratic curve"), "{}", t.verdict);
        assert_eq!(t.rows.len(), 10);
    }
}
