//! Markdown table rendering for experiment results.

use std::fmt;

/// One grid cell's measured costs, for machine-readable export
/// (`BENCH_sweep.json`). `time` is the model's time notion: cycles for
/// synchronous runs, the maximum arrival epoch for asynchronous ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellMetrics {
    /// Ring size.
    pub n: u64,
    /// Workload label ("random", "all ones", …).
    pub label: String,
    /// Messages sent.
    pub messages: u64,
    /// Bits sent.
    pub bits: u64,
    /// Cycles (sync) or max arrival epoch (async).
    pub time: u64,
}

/// One experiment's result table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Experiment id (e.g. "E10").
    pub id: &'static str,
    /// Human-readable title with the paper reference.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// One-line verdict ("shape holds", etc.).
    pub verdict: String,
    /// Machine-readable per-cell costs (empty for experiments whose tables
    /// are not cost grids). Not rendered in markdown; exported to
    /// `BENCH_sweep.json` by the `experiments` binary.
    pub metrics: Vec<CellMetrics>,
}

impl Table {
    /// Starts a table.
    #[must_use]
    pub fn new(id: &'static str, title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            id,
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
            verdict: String::new(),
            metrics: Vec::new(),
        }
    }

    /// Appends one cell's machine-readable costs.
    pub fn push_metric(&mut self, metric: CellMetrics) {
        self.metrics.push(metric);
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width");
        self.rows.push(row);
    }

    /// Sets the verdict line.
    pub fn set_verdict(&mut self, verdict: impl Into<String>) {
        self.verdict = verdict.into();
    }
}

/// Formats a float compactly.
#[must_use]
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.1}")
    }
}

impl fmt::Display for Table {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(out, "## {} — {}\n", self.id, self.title)?;
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let line = |cells: &[String], out: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(out, "|")?;
            for (c, w) in cells.iter().zip(&widths) {
                write!(out, " {c:>w$} |")?;
            }
            writeln!(out)
        };
        line(&self.headers, out)?;
        write!(out, "|")?;
        for w in &widths {
            write!(out, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(out)?;
        for row in &self.rows {
            line(row, out)?;
        }
        if !self.verdict.is_empty() {
            writeln!(out, "\n*{}*", self.verdict)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("E0", "demo", &["n", "messages"]);
        t.push(vec!["5".into(), "20".into()]);
        t.set_verdict("ok");
        let s = t.to_string();
        assert!(s.contains("## E0"));
        assert!(s.contains("| 5 |"));
        assert!(s.contains("*ok*"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("E0", "demo", &["a", "b"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(2.45), "2.5");
        assert_eq!(f(123456.7), "123457");
    }
}
