//! Cluster launch plumbing shared by `ringctl` (the launcher) and
//! `ringd --cluster` (the per-shard driver).
//!
//! A cluster run has three moving parts (DESIGN.md §S27):
//!
//! 1. **The manifest** — one JSON file read by every process,
//!    enumerating the job and the shard map. [`build_manifest`] fills
//!    driver-default inputs *before* the file is written, so every shard
//!    digests identical bytes.
//! 2. **The shard drivers** — `ringd --cluster <manifest> --shard K`,
//!    one per host (loopback subprocesses under `ringctl`). Each prints
//!    one [`shard_result_line`] on stdout and writes its per-shard v2
//!    recording next to the manifest.
//! 3. **The merge** — `ringctl` (or `tracer merge`) interleaves the
//!    shard recordings into the canonical recording and certifies the
//!    run against the async simulator via
//!    [`anonring_net::certify_cluster`].

use std::io::Read as _;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use anonring_core::algorithms::driver::Audited;
use anonring_net::{
    certify_cluster, ClusterCertified, ClusterManifest, ShardReport, ShardSpec, MANIFEST_VERSION,
};
use anonring_sim::telemetry::Recording;

use crate::json::{json_escape, Value};
use crate::ringd::default_inputs;

/// Launcher-side description of a loopback cluster job.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Which audited algorithm to run.
    pub algorithm: Audited,
    /// Ring size.
    pub n: usize,
    /// How many shards to split it across.
    pub shards: usize,
    /// Delivery-jitter seed.
    pub seed: u64,
    /// Per-link inbox capacity.
    pub capacity: usize,
    /// Delivery-jitter bound, microseconds.
    pub max_delay_us: u64,
    /// Cluster-wide wall-clock budget, milliseconds.
    pub timeout_ms: u64,
    /// Manifest label (free-form, echoed into recordings).
    pub label: String,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            algorithm: Audited::AsyncInputDist,
            n: 6,
            shards: 2,
            seed: 0,
            capacity: 8,
            max_delay_us: 0,
            timeout_ms: 30_000,
            label: "ringctl".to_string(),
        }
    }
}

/// Reserves `count` distinct loopback addresses by binding ephemeral
/// listeners and dropping them.
///
/// # Errors
///
/// A rendered I/O error when the loopback interface refuses a bind.
pub fn free_loopback_addrs(count: usize) -> Result<Vec<String>, String> {
    let listeners: Vec<TcpListener> = (0..count)
        .map(|_| TcpListener::bind("127.0.0.1:0").map_err(|e| format!("reserve port: {e}")))
        .collect::<Result<_, String>>()?;
    listeners
        .iter()
        .map(|l| {
            l.local_addr()
                .map(|a| a.to_string())
                .map_err(|e| format!("read reserved addr: {e}"))
        })
        .collect()
}

/// Builds a manifest for a loopback cluster: driver-default inputs
/// filled in (so every shard digests identical bytes), processors tiled
/// across shards as evenly as possible, one freshly reserved loopback
/// port per shard.
///
/// # Errors
///
/// A rendered message on an impossible shape (more shards than
/// processors) or a port-reservation failure.
pub fn build_manifest(config: &ClusterConfig) -> Result<ClusterManifest, String> {
    if config.shards == 0 || config.shards > config.n {
        return Err(format!(
            "cannot tile {} processors across {} shards",
            config.n, config.shards
        ));
    }
    let addrs = free_loopback_addrs(config.shards)?;
    let base = config.n / config.shards;
    let extra = config.n % config.shards;
    let mut start = 0usize;
    let shards = (0..config.shards)
        .map(|k| {
            let count = base + usize::from(k < extra);
            let spec = ShardSpec {
                id: k as u64,
                addr: addrs[k].clone(),
                start,
                count,
            };
            start += count;
            spec
        })
        .collect();
    Ok(ClusterManifest {
        version: MANIFEST_VERSION,
        label: config.label.clone(),
        algorithm: config.algorithm.name().to_string(),
        n: config.n,
        inputs: default_inputs(config.algorithm, config.n),
        seed: config.seed,
        capacity: config.capacity,
        max_delay_us: config.max_delay_us,
        timeout_ms: config.timeout_ms,
        shards,
    })
}

/// Renders a shard driver's result as one JSON line (no trailing
/// newline): everything in the [`ShardReport`] except the recording,
/// which travels as a file.
#[must_use]
pub fn shard_result_line(report: &ShardReport) -> String {
    let mut outputs = String::from("[");
    for (i, output) in report.outputs.iter().enumerate() {
        if i > 0 {
            outputs.push(',');
        }
        outputs.push('"');
        outputs.push_str(&json_escape(output));
        outputs.push('"');
    }
    outputs.push(']');
    format!(
        "{{\"type\":\"shard\",\"shard\":{},\"shards\":{},\"start\":{},\"outputs\":{outputs},\
         \"messages\":{},\"bits\":{},\"deliveries\":{},\"dropped\":{},\"peak_in_flight\":{},\
         \"backpressure_waits\":{}}}",
        report.shard,
        report.shards,
        report.start,
        report.messages,
        report.bits,
        report.deliveries,
        report.dropped,
        report.peak_in_flight,
        report.backpressure_waits,
    )
}

fn field(value: &Value, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("shard result line is missing {key}"))
}

/// Parses a [`shard_result_line`] back into a [`ShardReport`], attaching
/// the recording read from the shard's recording file.
///
/// # Errors
///
/// A rendered message naming the malformed or missing field.
pub fn parse_shard_result(line: &str, recording: Recording) -> Result<ShardReport, String> {
    let value = Value::parse(line)?;
    if value.get("type").and_then(Value::as_str) != Some("shard") {
        return Err(format!("not a shard result line: {line}"));
    }
    let outputs = value
        .get("outputs")
        .and_then(Value::as_array)
        .ok_or_else(|| "shard result line is missing outputs".to_string())?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| "outputs must be strings".to_string())
        })
        .collect::<Result<Vec<String>, String>>()?;
    Ok(ShardReport {
        shard: field(&value, "shard")?,
        shards: field(&value, "shards")?,
        start: usize::try_from(field(&value, "start")?)
            .map_err(|_| "start overflows usize".to_string())?,
        outputs,
        messages: field(&value, "messages")?,
        bits: field(&value, "bits")?,
        deliveries: field(&value, "deliveries")?,
        dropped: field(&value, "dropped")?,
        peak_in_flight: field(&value, "peak_in_flight")?,
        backpressure_waits: field(&value, "backpressure_waits")?,
        recording,
    })
}

/// The recording filename a shard driver writes next to the manifest.
#[must_use]
pub fn shard_recording_name(shard: u64) -> String {
    format!("shard-{shard}.jsonl")
}

/// One launched shard subprocess.
struct ShardChild {
    shard: u64,
    child: Child,
}

/// Launches one `ringd --cluster` subprocess per shard, waits for all of
/// them, parses their result lines, reads their recordings, and returns
/// the reports in shard order.
///
/// `ringd` is the driver binary (usually `ringd` next to the current
/// executable); `dir` receives the manifest (`manifest.json`) and the
/// per-shard recordings.
///
/// # Errors
///
/// A rendered message naming the first shard that failed (nonzero exit,
/// unparseable result line, unreadable recording).
pub fn launch(
    manifest: &ClusterManifest,
    ringd: &Path,
    dir: &Path,
) -> Result<Vec<ShardReport>, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let manifest_path = dir.join("manifest.json");
    std::fs::write(&manifest_path, manifest.render() + "\n")
        .map_err(|e| format!("write {}: {e}", manifest_path.display()))?;
    let mut children: Vec<ShardChild> = Vec::with_capacity(manifest.shards.len());
    for spec in &manifest.shards {
        let record = dir.join(shard_recording_name(spec.id));
        let child = Command::new(ringd)
            .arg("--cluster")
            .arg(&manifest_path)
            .arg("--shard")
            .arg(spec.id.to_string())
            .arg("--record")
            .arg(&record)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("spawn {} for shard {}: {e}", ringd.display(), spec.id));
        match child {
            Ok(child) => children.push(ShardChild {
                shard: spec.id,
                child,
            }),
            Err(e) => {
                for mut running in children {
                    let _ = running.child.kill();
                    let _ = running.child.wait();
                }
                return Err(e);
            }
        }
    }
    // The drivers deadline themselves (manifest timeout plus handshake
    // budgets); the launcher only backstops a truly wedged subprocess.
    let backstop =
        Instant::now() + Duration::from_millis(manifest.timeout_ms) + Duration::from_secs(30);
    let mut reports = Vec::with_capacity(children.len());
    let mut failure: Option<String> = None;
    for running in &mut children {
        loop {
            match running.child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() >= backstop => {
                    let _ = running.child.kill();
                    let _ = running.child.wait();
                    failure.get_or_insert_with(|| {
                        format!("shard {} wedged past the backstop", running.shard)
                    });
                    break;
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(10)),
                Err(e) => {
                    failure.get_or_insert_with(|| format!("wait for shard {}: {e}", running.shard));
                    break;
                }
            }
        }
    }
    for mut running in children {
        let status = running.child.wait().map_err(|e| e.to_string());
        let mut stdout = String::new();
        if let Some(pipe) = running.child.stdout.as_mut() {
            let _ = pipe.read_to_string(&mut stdout);
        }
        let shard = running.shard;
        if failure.is_some() {
            continue;
        }
        match status {
            Ok(status) if status.success() => {
                let line = stdout
                    .lines()
                    .find(|l| l.contains("\"type\":\"shard\""))
                    .map(str::to_string);
                let record = dir.join(shard_recording_name(shard));
                let parsed = line
                    .ok_or_else(|| format!("shard {shard} printed no result line"))
                    .and_then(|line| {
                        let text = std::fs::read_to_string(&record)
                            .map_err(|e| format!("read {}: {e}", record.display()))?;
                        let recording = Recording::parse_jsonl(&text)
                            .map_err(|e| format!("parse {}: {e}", record.display()))?;
                        parse_shard_result(&line, recording)
                    });
                match parsed {
                    Ok(report) => reports.push(report),
                    Err(e) => failure = Some(e),
                }
            }
            Ok(status) => {
                failure = Some(format!(
                    "shard {shard} exited with {status}: {}",
                    stdout.lines().last().unwrap_or("").trim()
                ));
            }
            Err(e) => failure = Some(format!("wait for shard {shard}: {e}")),
        }
    }
    match failure {
        Some(e) => Err(e),
        None => {
            reports.sort_by_key(|r| r.shard);
            Ok(reports)
        }
    }
}

/// Launches the cluster, merges the shard recordings, certifies the
/// merged run against the async simulator, and writes the canonical
/// merged recording to `dir/merged.jsonl`.
///
/// # Errors
///
/// A rendered message from whichever stage failed first.
pub fn launch_and_certify(
    manifest: &ClusterManifest,
    ringd: &Path,
    dir: &Path,
) -> Result<ClusterCertified, String> {
    let reports = launch(manifest, ringd, dir)?;
    let certified = certify_cluster(manifest, &reports).map_err(|e| e.to_string())?;
    let merged_path = dir.join("merged.jsonl");
    std::fs::write(&merged_path, certified.merged.to_jsonl())
        .map_err(|e| format!("write {}: {e}", merged_path.display()))?;
    Ok(certified)
}

/// The `ringd` binary expected next to another binary (both live in the
/// same cargo target directory).
#[must_use]
pub fn sibling_ringd() -> PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|exe| {
            Some(
                exe.parent()?
                    .join(format!("ringd{}", std::env::consts::EXE_SUFFIX)),
            )
        })
        .unwrap_or_else(|| PathBuf::from("ringd"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonring_net::cluster::run_shard;

    #[test]
    fn manifests_tile_evenly_and_digest_identically() {
        let config = ClusterConfig {
            n: 7,
            shards: 3,
            ..ClusterConfig::default()
        };
        let manifest = build_manifest(&config).expect("valid shape");
        let counts: Vec<usize> = manifest.shards.iter().map(|s| s.count).collect();
        assert_eq!(counts, [3, 2, 2]);
        assert_eq!(manifest.inputs.len(), 7);
        // Round-tripping through the canonical render is digest-stable:
        // what ringctl writes is what every shard digests.
        let reparsed = ClusterManifest::parse(&manifest.render()).expect("round trip");
        assert_eq!(reparsed.digest(), manifest.digest());
    }

    #[test]
    fn too_many_shards_is_named() {
        let config = ClusterConfig {
            n: 2,
            shards: 3,
            ..ClusterConfig::default()
        };
        assert!(build_manifest(&config)
            .expect_err("3 > 2")
            .contains("2 processors"));
    }

    #[test]
    fn shard_result_lines_round_trip() {
        let config = ClusterConfig {
            algorithm: Audited::SyncAnd,
            n: 4,
            shards: 2,
            label: "roundtrip".to_string(),
            ..ClusterConfig::default()
        };
        let manifest = build_manifest(&config).expect("valid shape");
        let manifest = &manifest;
        let reports: Vec<ShardReport> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2u64)
                .map(|k| scope.spawn(move || run_shard(manifest, k)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("thread").expect("shard run"))
                .collect()
        });
        for report in &reports {
            let line = shard_result_line(report);
            let parsed = parse_shard_result(&line, report.recording.clone()).expect("round trip");
            assert_eq!(parsed.shard, report.shard);
            assert_eq!(parsed.outputs, report.outputs);
            assert_eq!(parsed.messages, report.messages);
            assert_eq!(parsed.bits, report.bits);
        }
        certify_cluster(manifest, &reports).expect("loopback cluster certifies");
    }

    #[test]
    fn non_shard_lines_are_rejected() {
        let recording = Recording {
            version: 2,
            n: 2,
            label: "x".to_string(),
            engine: "net".to_string(),
            shard: Some((0, 1)),
            truncated: 0,
            events: Vec::new(),
        };
        assert!(parse_shard_result("{\"type\":\"result\"}", recording).is_err());
    }
}
