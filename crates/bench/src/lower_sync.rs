//! Synchronous lower-bound experiments (§6): E10–E13.

use anonring_core::algorithms::{compute::compute_sync, orientation, start_sync};
use anonring_core::bounds;
use anonring_core::functions::Xor;
use anonring_core::lower_bounds::random_functions::{
    theorem_6_7_probability_bound, thue_morse_images,
};
use anonring_core::lower_bounds::witnesses::{
    orientation_sync_pair, start_sync_pair, xor_sync_pair,
};
use anonring_sim::{RingConfig, WakeSchedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::table::{f, Table};

/// E10 (§6.3.1): synchronous XOR costs `(n/54)·ln(n/9)` at `n = 3ᵏ`; the
/// Figure 2 algorithm's measured cost sits between the lower bound and
/// its own `O(n log n)` upper bound — the `Θ(n log n)` sandwich.
#[must_use]
pub fn e10_xor_lower_bound() -> Table {
    let mut t = Table::new(
        "E10",
        "§6.3.1 synchronous XOR at n = 3^k: lower bound ≤ measured ≤ upper bound",
        &[
            "n",
            "pair verified",
            "Σβ/2",
            "paper LB",
            "measured",
            "upper bound",
        ],
    );
    let mut ok = true;
    for k in [3usize, 4, 5, 6] {
        let pair = xor_sync_pair(k);
        let n = pair.r1.n() as u64;
        let verified = pair.verify_structure().is_ok();
        let c1 = compute_sync(&pair.r1, &Xor).unwrap();
        let c2 = compute_sync(&pair.r2, &Xor).unwrap();
        ok &= verified && pair.outputs_disagree(&c1.values, &c2.values);
        let measured = c1.messages.max(c2.messages);
        let lb = bounds::xor_sync_lower(n);
        let ub = bounds::sync_input_dist_messages(n) + n as f64;
        ok &= (measured as f64) >= lb && (measured as f64) <= ub;
        t.push(vec![
            n.to_string(),
            verified.to_string(),
            f(pair.bound()),
            f(lb),
            measured.to_string(),
            f(ub),
        ]);
    }
    t.set_verdict(if ok {
        "fooling conditions machine-verified; measured cost is wedged between the Ω(n log n) \
         and O(n log n) bounds"
    } else {
        "VIOLATION"
    });
    t
}

/// E11 (§6.3.2): synchronous orientation costs `(n/27)·ln(n/9)` at
/// `n = 3ᵏ` on the `D = hᵏ(0)` ring.
#[must_use]
pub fn e11_orientation_lower_bound() -> Table {
    let mut t = Table::new(
        "E11",
        "§6.3.2 synchronous orientation at n = 3^k on D = h^k(0)",
        &[
            "n",
            "pair verified",
            "Σβ/2",
            "paper LB",
            "measured",
            "oriented after",
        ],
    );
    let mut ok = true;
    for k in [3usize, 4, 5, 6] {
        let pair = orientation_sync_pair(k);
        let n = pair.r1.n() as u64;
        let verified = pair.verify_structure().is_ok();
        let report = orientation::run(pair.r1.topology()).unwrap();
        let after = pair.r1.topology().with_switched(report.outputs());
        // The twins face opposite ways, so in the oriented result exactly
        // one of them switched: outputs disagree (condition 6a).
        ok &= verified && pair.outputs_disagree(report.outputs(), report.outputs());
        let lb = bounds::orientation_sync_lower(n);
        ok &= (report.messages as f64) >= lb && after.is_oriented();
        t.push(vec![
            n.to_string(),
            verified.to_string(),
            f(pair.bound()),
            f(lb),
            report.messages.to_string(),
            after.is_oriented().to_string(),
        ]);
    }
    t.set_verdict(if ok {
        "the D0L-symmetric ring forces Figure 4 to pay Ω(n log n) — and it still orients"
    } else {
        "VIOLATION"
    });
    t
}

/// E12 (§6.3.3): start synchronization costs `(n/54)·ln(n/36)` at
/// `n = 4·3ᵏ` under the `σ₀σ₀σ₁σ₁` wake adversary.
#[must_use]
pub fn e12_start_sync_lower_bound() -> Table {
    let mut t = Table::new(
        "E12",
        "§6.3.3 synchronous start synchronization at n = 4·3^k",
        &[
            "n",
            "pair verified",
            "Σβ/2",
            "paper LB",
            "measured",
            "simultaneous",
        ],
    );
    let mut ok = true;
    for k in [3usize, 4, 5] {
        let pair = start_sync_pair(k);
        let n = pair.r1.n();
        let verified = pair.verify_structure().is_ok();
        let word: Vec<u8> = pair.r1.inputs().to_vec();
        let wake = WakeSchedule::from_word(&word).unwrap();
        let topology = anonring_sim::RingTopology::oriented(n).unwrap();
        let report = start_sync::run(&topology, &wake).unwrap();
        // Outputs in the paper's sense: cycles since own wake-up; the
        // twins woke at different cycles yet halt together, so their
        // outputs differ.
        let outputs: Vec<u64> = report
            .halt_cycles
            .iter()
            .zip(wake.as_slice())
            .map(|(&h, &w)| h - w)
            .collect();
        ok &= verified && outputs[pair.p1] != outputs[pair.p2];
        let lb = bounds::start_sync_sync_lower(n as u64);
        ok &= (report.messages as f64) >= lb && report.halted_simultaneously();
        t.push(vec![
            n.to_string(),
            verified.to_string(),
            f(pair.bound()),
            f(lb),
            report.messages.to_string(),
            report.halted_simultaneously().to_string(),
        ]);
    }
    t.set_verdict(if ok {
        "the adversarial wake word costs Figure 5 Ω(n log n) messages; synchronization holds"
    } else {
        "VIOLATION"
    });
    t
}

/// E13 (Thm 6.7): almost all computable functions cost
/// `(n/64)·ln(n/64)` synchronous messages at `n = 2²ᵏ`: any function
/// separating two Thue–Morse images pays it, and a random function
/// separates some pair with probability `≥ 1 − 2^{1−2^√n/n}`.
#[must_use]
pub fn e13_random_sync_functions() -> Table {
    let mut t = Table::new(
        "E13",
        "Thm 6.7 random synchronous functions at n = 2^(2k): Thue–Morse image families",
        &[
            "n",
            "#images",
            "P[cheap] bound",
            "sampled cheap",
            "measured pair cost",
            "paper LB",
        ],
    );
    let mut rng = StdRng::seed_from_u64(13);
    let mut ok = true;
    for k in [2usize, 3] {
        let len = 1 << k; // sqrt(n)
        let n = len * len;
        let images = thue_morse_images(len, k);
        // Sampled probability that a random function fails to separate
        // any two images (i.e. is constant on all of them).
        let samples = 2000;
        let mut cheap = 0;
        for _ in 0..samples {
            let first: bool = rng.gen();
            if (1..images.len()).all(|_| rng.gen::<bool>() == first) {
                cheap += 1;
            }
        }
        let frac = cheap as f64 / samples as f64;
        let bound = theorem_6_7_probability_bound(n as u64).min(1.0);
        // Measured: compute XOR (which separates images of odd/even seed
        // weight... Thue-Morse images all have balanced parity; use SUM
        // of a distinguishing window instead — simplest honest check:
        // run Figure 2 on two distinct images; any separating function
        // costs what input distribution costs here.
        let c1 = compute_sync(&RingConfig::oriented(images[0].as_slice().to_vec()), &Xor).unwrap();
        let c2 = compute_sync(&RingConfig::oriented(images[1].as_slice().to_vec()), &Xor).unwrap();
        let measured = c1.messages.max(c2.messages);
        let lb = bounds::random_function_sync_lower(n as u64).max(0.0);
        ok &= (measured as f64) >= lb;
        // Sampling against an exact event probability 2^{1-#images}.
        let exact = 2f64.powi(1 - images.len() as i32);
        ok &= frac <= (exact + 0.05).min(1.0) && exact <= bound + 1e-9;
        t.push(vec![
            n.to_string(),
            images.len().to_string(),
            format!("{bound:.2e}"),
            format!("{frac:.4}"),
            measured.to_string(),
            f(lb),
        ]);
    }
    t.set_verdict(if ok {
        "functions constant on all Thue–Morse images are vanishingly rare; separating any two \
         images already costs the Ω(n log n) the theorem predicts"
    } else {
        "VIOLATION"
    });
    t
}
