//! Regenerates every experiment table (E1–E18).
//!
//! ```text
//! cargo run --release -p anonring-bench --bin experiments [E7 E10 ...]
//! ```
//!
//! With no arguments all experiments run in DESIGN.md order; arguments
//! filter by experiment id.

use std::time::Instant;

fn main() {
    let filters: Vec<String> = std::env::args()
        .skip(1)
        .map(|s| s.to_uppercase())
        .collect();
    println!("# anonring experiment tables\n");
    println!(
        "Reproduction of the complexity bounds of Attiya, Snir & Warmuth, \
         *Computing on an Anonymous Ring* (J. ACM 1988).\n"
    );
    let mut failures = 0;
    for (id, run) in anonring_bench::experiment_runners() {
        if !filters.is_empty() && !filters.iter().any(|f| f == id) {
            continue;
        }
        let start = Instant::now();
        let table = run();
        print!("{table}");
        println!("({:.2?})\n", start.elapsed());
        if table.verdict.contains("VIOLATION") || table.verdict.contains("MISMATCH") {
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) reported violations");
        std::process::exit(1);
    }
}
