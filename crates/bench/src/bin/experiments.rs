//! Regenerates every experiment table (E1–E22).
//!
//! ```text
//! cargo run --release -p anonring-bench --bin experiments [E7 E10 ...]
//! ```
//!
//! With no arguments all experiments run in DESIGN.md order; arguments
//! filter by experiment id. Markdown tables go to stdout (EXPERIMENTS.md
//! records them); machine-readable per-cell costs go to
//! `BENCH_sweep.json` in the working directory, and recorded telemetry
//! runs (flight-recorder events + metrics snapshots, replayable with the
//! `tracer` binary) to `TELEMETRY_<id>.jsonl` / `TELEMETRY_<id>.metrics.json`.

use std::fmt::Write as _;
use std::time::Instant;

use anonring_bench::Table;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes the run: one entry per experiment with its verdict, wall
/// time, and per-cell `n`/`messages`/`bits`/`time` costs where the
/// experiment is a cost grid.
fn render_json(results: &[(Table, f64)]) -> String {
    let mut out = String::from("{\n  \"experiments\": [\n");
    for (i, (table, wall_ms)) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"id\": \"{}\", \"title\": \"{}\", \"verdict\": \"{}\", \"wall_ms\": {:.3}, \"cells\": [",
            json_escape(table.id),
            json_escape(&table.title),
            json_escape(&table.verdict),
            wall_ms,
        );
        for (j, m) in table.metrics.iter().enumerate() {
            let _ = write!(
                out,
                "\n      {{\"n\": {}, \"label\": \"{}\", \"messages\": {}, \"bits\": {}, \"time\": {}}}{}",
                m.n,
                json_escape(&m.label),
                m.messages,
                m.bits,
                m.time,
                if j + 1 < table.metrics.len() { "," } else { "\n    " },
            );
        }
        let _ = writeln!(out, "]}}{}", if i + 1 < results.len() { "," } else { "" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let filters: Vec<String> = std::env::args().skip(1).map(|s| s.to_uppercase()).collect();
    println!("# anonring experiment tables\n");
    println!(
        "Reproduction of the complexity bounds of Attiya, Snir & Warmuth, \
         *Computing on an Anonymous Ring* (J. ACM 1988).\n"
    );
    let mut failures = 0;
    let mut results: Vec<(Table, f64)> = Vec::new();
    for (id, run) in anonring_bench::experiment_runners() {
        if !filters.is_empty() && !filters.iter().any(|f| f == id) {
            continue;
        }
        let start = Instant::now();
        let table = run();
        print!("{table}");
        println!("({:.2?})\n", start.elapsed());
        if table.verdict.contains("VIOLATION") || table.verdict.contains("MISMATCH") {
            failures += 1;
        }
        results.push((table, start.elapsed().as_secs_f64() * 1e3));
    }
    match std::fs::write("BENCH_sweep.json", render_json(&results)) {
        Ok(()) => eprintln!("wrote BENCH_sweep.json ({} experiments)", results.len()),
        Err(err) => eprintln!("could not write BENCH_sweep.json: {err}"),
    }
    for artifacts in anonring_bench::telemetry_runs::default_artifacts() {
        if !filters.is_empty() && !filters.iter().any(|f| f == artifacts.id) {
            continue;
        }
        let events = format!("TELEMETRY_{}.jsonl", artifacts.id);
        let metrics = format!("TELEMETRY_{}.metrics.json", artifacts.id);
        match std::fs::write(&events, &artifacts.events_jsonl)
            .and_then(|()| std::fs::write(&metrics, &artifacts.metrics_json))
        {
            Ok(()) => eprintln!(
                "wrote {events} + {metrics} ({} messages)",
                artifacts.messages
            ),
            Err(err) => eprintln!("could not write {events}: {err}"),
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) reported violations");
        std::process::exit(1);
    }
}
