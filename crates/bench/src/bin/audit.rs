//! The complexity auditor and perf-trajectory regression gate.
//!
//! ```text
//! audit run  --revision <label> [--trajectory <path>] [--grid n1,n2,...] [--wall]
//! audit fit  [--trajectory <path>] [--revision <label>]
//! audit diff <old.json> <new.json> [--tolerance <pct>]
//! ```
//!
//! `run` sweeps every audited algorithm over the grid and upserts one
//! snapshot (keyed by the revision label — never by wall clocks) into the
//! trajectory file. `fit` checks the measured curves against the paper's
//! theorems and exits nonzero on any mismatch. `diff` compares the latest
//! snapshots of two trajectory files and exits nonzero when any
//! deterministic metered cost (`messages`, `bits`, `time`,
//! `critical_path`) regressed beyond the tolerance, naming the offending
//! cells; wall-clock deltas are reported as warnings only.

use std::process::ExitCode;

use anonring_bench::audit::{
    audit_fits, diff_snapshots, measure_snapshot, Snapshot, Trajectory, DEFAULT_GRID,
};

const DEFAULT_TRAJECTORY: &str = "BENCH_trajectory.json";

fn load_trajectory(path: &str) -> Result<Trajectory, String> {
    let input = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    Trajectory::parse(&input).map_err(|e| format!("parse {path}: {e}"))
}

fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    match args.iter().position(|a| a == name) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn take_option(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == name) {
        Some(i) => {
            if i + 1 >= args.len() {
                return Err(format!("{name} requires a value"));
            }
            let value = args.remove(i + 1);
            args.remove(i);
            Ok(Some(value))
        }
        None => Ok(None),
    }
}

fn reject_leftovers(args: &[String]) -> Result<(), String> {
    match args.first() {
        Some(extra) => Err(format!("unexpected argument {extra:?}")),
        None => Ok(()),
    }
}

fn print_snapshot(snapshot: &Snapshot) {
    println!("snapshot {:?}:", snapshot.revision);
    println!("| algorithm | theorem | n | messages | bits | time | critical path |");
    println!("|---|---|---|---|---|---|---|");
    for algo in &snapshot.algorithms {
        for cell in &algo.cells {
            println!(
                "| {} | {} | {} | {} | {} | {} | {} |",
                algo.algorithm,
                algo.theorem.token(),
                cell.n,
                cell.messages,
                cell.bits,
                cell.time,
                cell.critical_path
            );
        }
    }
}

fn cmd_run(mut args: Vec<String>) -> Result<ExitCode, String> {
    let revision = take_option(&mut args, "--revision")?
        .ok_or("run requires --revision <label> (snapshots are keyed by it)")?;
    let path = take_option(&mut args, "--trajectory")?.unwrap_or_else(|| DEFAULT_TRAJECTORY.into());
    let wall = take_flag(&mut args, "--wall");
    let grid: Vec<usize> = match take_option(&mut args, "--grid")? {
        Some(spec) => spec
            .split(',')
            .map(|part| {
                part.trim()
                    .parse::<usize>()
                    .map_err(|_| format!("bad grid entry {part:?}"))
            })
            .collect::<Result<_, _>>()?,
        None => DEFAULT_GRID.to_vec(),
    };
    reject_leftovers(&args)?;
    if grid.iter().any(|&n| n < 2) {
        return Err("grid ring sizes must be >= 2".into());
    }
    let mut trajectory = if std::path::Path::new(&path).exists() {
        load_trajectory(&path)?
    } else {
        Trajectory::new()
    };
    let snapshot = measure_snapshot(&revision, &grid, wall);
    print_snapshot(&snapshot);
    trajectory.upsert(snapshot);
    std::fs::write(&path, trajectory.to_json()).map_err(|e| format!("write {path}: {e}"))?;
    println!(
        "\nwrote {path} ({} snapshot{})",
        trajectory.snapshots.len(),
        if trajectory.snapshots.len() == 1 {
            ""
        } else {
            "s"
        }
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_fit(mut args: Vec<String>) -> Result<ExitCode, String> {
    let path = take_option(&mut args, "--trajectory")?.unwrap_or_else(|| DEFAULT_TRAJECTORY.into());
    let revision = take_option(&mut args, "--revision")?;
    reject_leftovers(&args)?;
    let trajectory = load_trajectory(&path)?;
    let snapshot = match &revision {
        Some(label) => trajectory
            .snapshot(label)
            .ok_or_else(|| format!("no snapshot {label:?} in {path}"))?,
        None => trajectory
            .latest()
            .ok_or_else(|| format!("{path} holds no snapshots"))?,
    };
    println!("fit of snapshot {:?}:", snapshot.revision);
    println!("| algorithm | theorem | exponent | verdict |");
    println!("|---|---|---|---|");
    let mut failures = 0usize;
    for report in audit_fits(snapshot) {
        println!(
            "| {} | {} | {:.2} | {} {} |",
            report.algorithm,
            report.theorem.token(),
            report.exponent,
            if report.pass { "PASS:" } else { "FAIL:" },
            report.detail
        );
        failures += usize::from(!report.pass);
    }
    if failures > 0 {
        eprintln!("audit: {failures} algorithm(s) off the paper's rate");
        return Ok(ExitCode::FAILURE);
    }
    println!("\nevery measured curve matches its theorem");
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(mut args: Vec<String>) -> Result<ExitCode, String> {
    let tolerance = match take_option(&mut args, "--tolerance")? {
        Some(spec) => spec
            .parse::<f64>()
            .ok()
            .filter(|t| *t >= 0.0)
            .ok_or_else(|| format!("bad tolerance {spec:?} (want a percentage >= 0)"))?,
        None => 0.0,
    };
    if args.len() != 2 {
        return Err("diff needs exactly two trajectory files: diff <old> <new>".into());
    }
    let new_path = args.pop().expect("len checked");
    let old_path = args.pop().expect("len checked");
    let old = load_trajectory(&old_path)?;
    let new = load_trajectory(&new_path)?;
    let old_snap = old
        .latest()
        .ok_or_else(|| format!("{old_path} holds no snapshots"))?;
    let new_snap = new
        .latest()
        .ok_or_else(|| format!("{new_path} holds no snapshots"))?;
    let report = diff_snapshots(old_snap, new_snap, tolerance);
    println!(
        "gate: {:?} ({}) -> {:?} ({}), tolerance {tolerance}%",
        old_snap.revision, old_path, new_snap.revision, new_path
    );
    for warning in &report.warnings {
        println!("warning: {warning}");
    }
    for improvement in &report.improvements {
        println!("improved: {improvement}");
    }
    if report.regressions.is_empty() {
        println!("no deterministic cost regressed");
        return Ok(ExitCode::SUCCESS);
    }
    for regression in &report.regressions {
        eprintln!("regression: {regression}");
    }
    eprintln!(
        "audit: {} metered cost(s) regressed",
        report.regressions.len()
    );
    Ok(ExitCode::FAILURE)
}

fn run() -> Result<ExitCode, String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return Err(
            "usage: audit run --revision <label> [--trajectory <path>] [--grid n1,n2,...] \
             [--wall] | audit fit [--trajectory <path>] [--revision <label>] | \
             audit diff <old> <new> [--tolerance <pct>]"
                .into(),
        );
    }
    let command = args.remove(0);
    match command.as_str() {
        "run" => cmd_run(args),
        "fit" => cmd_fit(args),
        "diff" => cmd_diff(args),
        other => Err(format!("unknown command {other:?} (run | fit | diff)")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("audit: {msg}");
            ExitCode::FAILURE
        }
    }
}
