//! `ringd` — the batched ring-job server over real transports.
//!
//! ```text
//! cargo run --release -p anonring-bench --bin ringd -- [flags] < jobs.jsonl
//! ```
//!
//! Reads one JSON job per line (see [`anonring_bench::ringd`] for the
//! schema), runs each on the `anonring_net` runtime, certifies every run
//! against the asynchronous simulator unless the job opts out, and
//! streams one JSON result line per job plus a final `"done"` summary.
//!
//! Flags:
//!
//! - `--workers N` — worker-pool size (default: one per core)
//! - `--record-dir DIR` — write a per-job v2 flight recording
//!   (`<id>.jsonl`, engine-stamped `"net"`) into `DIR`
//! - `--socket PATH` (unix) — serve batches over a unix socket instead
//!   of stdin/stdout; each connection is one batch
//! - `--log` — emit one-line JSON operational logs on stderr (job
//!   admitted/started/finished/requeued, with durations)
//! - `--retries N` — re-run failed jobs up to `N` extra times
//! - `--max-queue N` — admission bound; the reader blocks once `N`
//!   jobs are queued (default 4096)
//! - `--max-line-bytes N` — reject longer job lines with an `"error"`
//!   line (default 1 MiB)
//! - `--profile` — enable the S26 hot-path profiler; lock wait/hold,
//!   queue-dwell and allocation series then carry live tallies in every
//!   metrics scrape (they are present but zero-valued otherwise)
//!
//! A `{"type":"metrics"}` line on any stream answers with a live
//! [`ServingMetrics`](anonring_bench::ringd::ServingMetrics) snapshot
//! (add `"format":"prometheus"` for the text exposition).
//!
//! ## Cluster mode (S27)
//!
//! ```text
//! ringd --cluster MANIFEST --shard K [--record PATH]
//! ```
//!
//! Runs one shard of a multi-host cluster job instead of serving a
//! batch: reads the shared manifest, owns the manifest's shard `K`,
//! establishes the cross-shard links (handshaked TCP), runs the owned
//! processors to the coordinated verdict, writes the per-shard v2
//! recording to `PATH`, and prints one shard result line. `ringctl`
//! launches one such process per shard and merges the recordings.
//!
//! Exits nonzero if any job in the (stdin) batch failed.

use std::io::{BufReader, Write};
use std::path::PathBuf;
use std::process::ExitCode;

use anonring_bench::cluster::shard_result_line;
use anonring_bench::ringd::{serve, ServeOptions};
use anonring_net::cluster::run_shard;
use anonring_net::ClusterManifest;

struct Cli {
    options: ServeOptions,
    socket: Option<PathBuf>,
    cluster: Option<PathBuf>,
    shard: Option<u64>,
    record: Option<PathBuf>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        options: ServeOptions::default(),
        socket: None,
        cluster: None,
        shard: None,
        record: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--cluster" => cli.cluster = Some(PathBuf::from(value("--cluster")?)),
            "--shard" => {
                cli.shard = Some(
                    value("--shard")?
                        .parse()
                        .map_err(|e| format!("--shard: {e}"))?,
                );
            }
            "--record" => cli.record = Some(PathBuf::from(value("--record")?)),
            "--workers" => {
                cli.options.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--record-dir" => cli.options.record_dir = Some(PathBuf::from(value("--record-dir")?)),
            "--socket" => cli.socket = Some(PathBuf::from(value("--socket")?)),
            "--log" => cli.options.log = true,
            "--retries" => {
                cli.options.retries = value("--retries")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?;
            }
            "--max-queue" => {
                cli.options.max_queue = value("--max-queue")?
                    .parse()
                    .map_err(|e| format!("--max-queue: {e}"))?;
            }
            "--max-line-bytes" => {
                cli.options.max_line_bytes = value("--max-line-bytes")?
                    .parse()
                    .map_err(|e| format!("--max-line-bytes: {e}"))?;
            }
            "--profile" => anonring_sim::profile::set_enabled(true),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if let Some(dir) = &cli.options.record_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("--record-dir {}: {e}", dir.display()))?;
    }
    Ok(cli)
}

#[cfg(unix)]
fn serve_socket(path: &std::path::Path, options: &ServeOptions) -> std::io::Result<()> {
    use std::os::unix::net::UnixListener;
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    eprintln!("ringd: listening on {}", path.display());
    for stream in listener.incoming() {
        let stream = stream?;
        let reader = BufReader::new(stream.try_clone()?);
        if let Err(e) = serve(reader, stream, options) {
            eprintln!("ringd: batch aborted: {e}");
        }
    }
    Ok(())
}

#[cfg(not(unix))]
fn serve_socket(_path: &std::path::Path, _options: &ServeOptions) -> std::io::Result<()> {
    Err(std::io::Error::other("--socket requires a unix platform"))
}

/// `ringd --cluster <manifest> --shard K [--record PATH]`: run one shard
/// of a cluster job to completion, write the per-shard recording, print
/// the shard result line.
fn run_cluster_shard(
    manifest: &std::path::Path,
    shard: u64,
    record: Option<&std::path::Path>,
) -> ExitCode {
    let text = match std::fs::read_to_string(manifest) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("ringd: read {}: {e}", manifest.display());
            return ExitCode::from(2);
        }
    };
    let manifest = match ClusterManifest::parse(&text) {
        Ok(manifest) => manifest,
        Err(e) => {
            eprintln!("ringd: {}: {e}", manifest.display());
            return ExitCode::from(2);
        }
    };
    let report = match run_shard(&manifest, shard) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("ringd: shard {shard}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = record {
        if let Err(e) = std::fs::write(path, report.recording.to_jsonl()) {
            eprintln!("ringd: write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    println!("{}", shard_result_line(&report));
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("ringd: {e}");
            eprintln!(
                "usage: ringd [--workers N] [--record-dir DIR] [--socket PATH] [--log] \
                 [--retries N] [--max-queue N] [--max-line-bytes N] [--profile] < jobs.jsonl\n\
                        ringd --cluster MANIFEST --shard K [--record PATH]"
            );
            return ExitCode::from(2);
        }
    };
    match (&cli.cluster, cli.shard) {
        (Some(manifest), Some(shard)) => {
            return run_cluster_shard(manifest, shard, cli.record.as_deref());
        }
        (Some(_), None) | (None, Some(_)) => {
            eprintln!("ringd: --cluster and --shard go together");
            return ExitCode::from(2);
        }
        (None, None) if cli.record.is_some() => {
            eprintln!("ringd: --record is cluster-mode only (use --record-dir when serving)");
            return ExitCode::from(2);
        }
        (None, None) => {}
    }
    if let Some(path) = &cli.socket {
        return match serve_socket(path, &cli.options) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("ringd: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let stdin = std::io::stdin();
    match serve(stdin.lock(), std::io::stdout(), &cli.options) {
        Ok(summary) => {
            let _ = std::io::stderr().flush();
            if summary.failed == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("ringd: {e}");
            ExitCode::FAILURE
        }
    }
}
