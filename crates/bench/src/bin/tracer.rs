//! Inspects recorded telemetry runs (`TELEMETRY_*.jsonl`).
//!
//! ```text
//! cargo run -p anonring-bench --bin tracer -- <recording.jsonl> [sections...]
//! ```
//!
//! Sections (all by default): `summary` (totals), `phases` (per-span
//! message/bit counts), `profile` (per-cycle activity), `diagram` (the
//! space-time diagram, reusing the live [`Trace`] renderer on the
//! replayed sends).

use std::process::ExitCode;

use anonring_sim::runtime::SendEvent;
use anonring_sim::telemetry::{Recording, ReplayEvent};
use anonring_sim::trace::Trace;

const SECTIONS: [&str; 4] = ["summary", "phases", "profile", "diagram"];

fn print_summary(rec: &Recording) {
    println!("## summary\n");
    println!("label:      {}", rec.label);
    println!("ring size:  {}", rec.n);
    println!("events:     {}", rec.events.len());
    if rec.truncated > 0 {
        println!(
            "truncated:  {} (bounded recorder evicted older events)",
            rec.truncated
        );
    }
    println!("messages:   {}", rec.messages());
    println!("bits:       {}", rec.bits());
    let (mut delivers, mut drops, mut halts) = (0u64, 0u64, 0u64);
    for e in &rec.events {
        match e {
            ReplayEvent::Deliver { dropped, .. } => {
                delivers += 1;
                drops += u64::from(*dropped);
            }
            ReplayEvent::Halt { .. } => halts += 1,
            ReplayEvent::Send { .. } => {}
        }
    }
    println!("deliveries: {delivers} ({drops} dropped at halted receivers)");
    println!("halts:      {halts} of {}", rec.n);
    let horizon = rec.events.iter().map(ReplayEvent::time).max();
    if let Some(h) = horizon {
        println!("time span:  0..={h}");
    }
    println!();
}

fn print_phases(rec: &Recording) {
    println!("## phases\n");
    let profile = rec.phase_profile();
    if profile.is_empty() {
        println!("(no sends recorded)\n");
        return;
    }
    println!("| phase | round | messages | bits |");
    println!("|---|---|---|---|");
    for ((phase, round), (messages, bits)) in profile {
        let name = if phase.is_empty() {
            "(unspanned)"
        } else {
            &phase
        };
        println!("| {name} | {round} | {messages} | {bits} |");
    }
    println!();
}

fn print_profile(rec: &Recording) {
    println!("## per-cycle activity\n");
    println!("| t | sends | delivers | drops | halts |");
    println!("|---|---|---|---|---|");
    let rows = rec.per_time_activity();
    let mut elided = 0usize;
    for (t, (sends, delivers, drops, halts)) in rows.iter().enumerate() {
        if sends + delivers + drops + halts == 0 {
            elided += 1;
            continue;
        }
        println!("| {t} | {sends} | {delivers} | {drops} | {halts} |");
    }
    if elided > 0 {
        println!("\n({elided} quiet cycles elided)");
    }
    println!();
}

fn print_diagram(rec: &Recording) {
    println!("## space-time diagram\n");
    let mut trace = Trace::new(rec.n);
    for event in &rec.events {
        match *event {
            ReplayEvent::Send {
                time,
                from,
                to,
                port,
                bits,
                ..
            } => trace.record(SendEvent {
                cycle: time,
                from,
                to,
                port,
                bits,
                // Parsed phases are owned strings; the diagram doesn't use
                // spans, so replayed sends carry none.
                span: None,
            }),
            ReplayEvent::Deliver { time, .. } | ReplayEvent::Halt { time, .. } => {
                trace.extend_horizon(time);
            }
        }
    }
    println!("{}", trace.render(60));
}

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let path = args
        .next()
        .ok_or_else(|| format!("usage: tracer <recording.jsonl> [{}]", SECTIONS.join("|")))?;
    let sections: Vec<String> = args.collect();
    for s in &sections {
        if !SECTIONS.contains(&s.as_str()) {
            return Err(format!(
                "unknown section {s:?} (expected one of {SECTIONS:?})"
            ));
        }
    }
    let wants = |name: &str| sections.is_empty() || sections.iter().any(|s| s == name);
    let input = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
    let rec = Recording::parse_jsonl(&input).map_err(|e| format!("parse {path}: {e}"))?;
    println!("# trace: {path}\n");
    if wants("summary") {
        print_summary(&rec);
    }
    if wants("phases") {
        print_phases(&rec);
    }
    if wants("profile") {
        print_profile(&rec);
    }
    if wants("diagram") {
        print_diagram(&rec);
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("tracer: {msg}");
            ExitCode::FAILURE
        }
    }
}
