//! Inspects recorded telemetry runs (`TELEMETRY_*.jsonl`).
//!
//! ```text
//! cargo run -p anonring-bench --bin tracer -- <recording.jsonl> [sections...]
//! ```
//!
//! Sections (all by default): `summary` (totals and quantiles), `phases`
//! (per-span message/bit counts), `profile` (per-cycle activity — and,
//! for `"engine":"net"` recordings with wall stamps, collapsed-stack
//! wall-time attribution in `flamegraph.pl` input format plus a top-K
//! wall-time sink table), `diagram` (the space-time diagram, reusing the
//! live [`Trace`] renderer on the replayed sends).
//!
//! Two further sections replay the causal structure of version-2
//! recordings and must be requested explicitly: `critical-path` (the
//! longest causal chain, by hops and by bits, with per-phase attribution)
//! and `dag` (the full causal DAG as Graphviz DOT, critical path
//! highlighted). Both fail with a diagnostic on version-1 recordings,
//! which carry no causal stamps.
//!
//! ```text
//! tracer merge [--out PATH] <shard.jsonl>...
//! ```
//!
//! Interleaves the per-shard recordings of one cluster run (S27) into
//! the canonical merged recording — sends ordered by their Lamport
//! stamps, seqs renumbered, cross-shard references resolved — written to
//! `--out` or stdout. Refuses incomplete shard sets with a verdict
//! naming the absent shard.

use std::process::ExitCode;

use anonring_sim::runtime::SendEvent;
use anonring_sim::telemetry::{merge, CausalDag, CriticalPath, Histogram, PathWeight};
use anonring_sim::telemetry::{Recording, ReplayEvent};
use anonring_sim::trace::Trace;

/// Sections printed when none are named on the command line.
const DEFAULT_SECTIONS: [&str; 4] = ["summary", "phases", "profile", "diagram"];
/// Sections that exist but only render when explicitly requested.
const EXPLICIT_SECTIONS: [&str; 2] = ["critical-path", "dag"];

fn print_summary(rec: &Recording) {
    println!("## summary\n");
    println!("label:      {}", rec.label);
    println!("format:     version {}", rec.version);
    let engine = if rec.engine.is_empty() {
        "(not recorded)"
    } else {
        &rec.engine
    };
    println!("engine:     {engine}");
    println!("ring size:  {}", rec.n);
    println!("events:     {}", rec.events.len());
    if rec.truncated > 0 {
        println!(
            "truncated:  {} (bounded recorder evicted older events)",
            rec.truncated
        );
    }
    println!("messages:   {}", rec.messages());
    println!("bits:       {}", rec.bits());
    let (mut delivers, mut drops, mut halts) = (0u64, 0u64, 0u64);
    for e in &rec.events {
        match e {
            ReplayEvent::Deliver { dropped, .. } => {
                delivers += 1;
                drops += u64::from(*dropped);
            }
            ReplayEvent::Halt { .. } => halts += 1,
            ReplayEvent::Send { .. } => {}
        }
    }
    println!("deliveries: {delivers} ({drops} dropped at halted receivers)");
    println!("halts:      {halts} of {}", rec.n);
    let horizon = rec.events.iter().map(ReplayEvent::time).max();
    if let Some(h) = horizon {
        println!("time span:  0..={h}");
    }
    print_quantiles(rec);
    print_wall_latency(rec);
    println!();
}

/// Per-phase wall-clock delivery latency for real-time (`"engine":"net"`)
/// recordings: each delivered message's latency is its deliver `wall`
/// stamp minus its send's, matched by `seq`. Simulator recordings carry
/// no wall stamps and print nothing here.
fn print_wall_latency(rec: &Recording) {
    if rec.engine != "net" {
        return;
    }
    let mut sends: std::collections::HashMap<u64, (u64, String)> = std::collections::HashMap::new();
    for event in &rec.events {
        if let ReplayEvent::Send {
            seq,
            phase,
            wall_us: Some(wall),
            ..
        } = event
        {
            sends.insert(*seq, (*wall, phase.clone().unwrap_or_default()));
        }
    }
    // BTreeMap keys the table in deterministic phase order.
    let mut per_phase: std::collections::BTreeMap<String, Histogram> =
        std::collections::BTreeMap::new();
    for event in &rec.events {
        if let ReplayEvent::Deliver {
            seq,
            wall_us: Some(delivered),
            ..
        } = event
        {
            if let Some((sent, phase)) = sends.get(seq) {
                per_phase
                    .entry(phase.clone())
                    .or_default()
                    .observe(delivered.saturating_sub(*sent));
            }
        }
    }
    if per_phase.is_empty() {
        return;
    }
    println!("\nwall latency (send -> deliver, microseconds):\n");
    println!("| phase | deliveries | p50 | p95 | p99 | p999 | max |");
    println!("|---|---|---|---|---|---|---|");
    for (phase, h) in &per_phase {
        let name = if phase.is_empty() {
            "(unspanned)"
        } else {
            phase
        };
        println!(
            "| {name} | {} | {:.3} | {:.3} | {:.3} | {:.3} | {} |",
            h.count,
            h.quantile(0.50),
            h.quantile(0.95),
            h.quantile(0.99),
            h.quantile(0.999),
            h.max
        );
    }
}

/// Derived distributions over the replayed events: message sizes and
/// per-cycle send activity, with the registry's quantile estimators.
fn print_quantiles(rec: &Recording) {
    let mut message_bits = Histogram::default();
    for event in &rec.events {
        if let ReplayEvent::Send { bits, .. } = event {
            message_bits.observe(*bits as u64);
        }
    }
    let mut sends_per_cycle = Histogram::default();
    for (sends, _, _, _) in rec.per_time_activity() {
        sends_per_cycle.observe(sends);
    }
    let rows = [
        ("message bits", &message_bits),
        ("sends per cycle", &sends_per_cycle),
    ];
    if rows.iter().all(|(_, h)| h.count == 0) {
        return;
    }
    println!("\n| distribution | count | max | mean | p50 | p95 | p99 | p999 |");
    println!("|---|---|---|---|---|---|---|---|");
    for (name, h) in rows {
        if h.count == 0 {
            continue;
        }
        println!(
            "| {name} | {} | {} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} |",
            h.count,
            h.max,
            h.mean(),
            h.quantile(0.50),
            h.quantile(0.95),
            h.quantile(0.99),
            h.quantile(0.999)
        );
    }
}

fn print_phases(rec: &Recording) {
    println!("## phases\n");
    let profile = rec.phase_profile();
    if profile.is_empty() {
        println!("(no sends recorded)\n");
        return;
    }
    println!("| phase | round | messages | bits |");
    println!("|---|---|---|---|");
    for ((phase, round), (messages, bits)) in profile {
        let name = if phase.is_empty() {
            "(unspanned)"
        } else {
            &phase
        };
        println!("| {name} | {round} | {messages} | {bits} |");
    }
    println!();
}

fn print_profile(rec: &Recording) {
    println!("## per-cycle activity\n");
    println!("| t | sends | delivers | drops | halts |");
    println!("|---|---|---|---|---|");
    let rows = rec.per_time_activity();
    let mut elided = 0usize;
    for (t, (sends, delivers, drops, halts)) in rows.iter().enumerate() {
        if sends + delivers + drops + halts == 0 {
            elided += 1;
            continue;
        }
        println!("| {t} | {sends} | {delivers} | {drops} | {halts} |");
    }
    if elided > 0 {
        println!("\n({elided} quiet cycles elided)");
    }
    println!();
    print_collapsed_stacks(rec);
}

/// Wall-time attribution for real-time (`"engine":"net"`) recordings,
/// rendered as collapsed stacks — `phase;algorithm;operation wall_us`,
/// the input format of Brendan Gregg's `flamegraph.pl` — plus a top-K
/// table of the biggest sinks. The wall stamps are monotone in file
/// order (the hub stamps them inside its critical section), so each
/// event is charged the wall time since the previous event: the deltas
/// partition the run's busy span. Simulator recordings carry no wall
/// stamps and skip this section; the markdown table rows elsewhere in
/// the output end in `|`, which `flamegraph.pl` ignores, so the whole
/// section can be piped in unfiltered.
fn print_collapsed_stacks(rec: &Recording) {
    if rec.engine != "net" {
        return;
    }
    let mut send_phase: std::collections::HashMap<u64, String> = std::collections::HashMap::new();
    // (phase, operation) -> (accumulated us, events); BTreeMap keys the
    // stack lines deterministically.
    let mut sinks: std::collections::BTreeMap<(String, &'static str), (u64, u64)> =
        std::collections::BTreeMap::new();
    let mut prev: Option<u64> = None;
    for event in &rec.events {
        let (wall, phase, operation) = match event {
            ReplayEvent::Send {
                seq,
                phase,
                wall_us: Some(wall),
                ..
            } => {
                let phase = phase.clone().unwrap_or_default();
                send_phase.insert(*seq, phase.clone());
                (*wall, phase, "send")
            }
            ReplayEvent::Deliver {
                seq,
                wall_us: Some(wall),
                ..
            } => (
                *wall,
                send_phase.get(seq).cloned().unwrap_or_default(),
                "deliver",
            ),
            _ => continue,
        };
        let charged = wall.saturating_sub(prev.unwrap_or(wall));
        prev = Some(wall);
        let slot = sinks.entry((phase, operation)).or_insert((0, 0));
        slot.0 += charged;
        slot.1 += 1;
    }
    if sinks.is_empty() {
        return;
    }
    let algorithm = if rec.label.is_empty() {
        "(unlabelled)"
    } else {
        &rec.label
    };
    println!("collapsed stacks (pipe to flamegraph.pl):\n");
    for ((phase, operation), (us, _)) in &sinks {
        let phase = if phase.is_empty() {
            "(unspanned)"
        } else {
            phase
        };
        println!("{phase};{algorithm};{operation} {us}");
    }
    let mut ranked: Vec<_> = sinks.iter().collect();
    ranked.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then_with(|| a.0.cmp(b.0)));
    println!("\ntop wall-time sinks:\n");
    println!("| rank | phase | operation | events | wall us |");
    println!("|---|---|---|---|---|");
    for (rank, ((phase, operation), (us, events))) in ranked.iter().take(8).enumerate() {
        let phase = if phase.is_empty() {
            "(unspanned)"
        } else {
            phase
        };
        println!("| {} | {phase} | {operation} | {events} | {us} |", rank + 1);
    }
    println!();
}

fn print_diagram(rec: &Recording) {
    println!("## space-time diagram\n");
    let mut trace = Trace::new(rec.n);
    for event in &rec.events {
        match *event {
            ReplayEvent::Send {
                time,
                from,
                to,
                port,
                bits,
                seq,
                lamport,
                parent,
                ..
            } => trace.record(SendEvent {
                cycle: time,
                from,
                to,
                port,
                bits,
                seq,
                lamport,
                parent,
                // Parsed phases are owned strings; the diagram doesn't use
                // spans, so replayed sends carry none.
                span: None,
            }),
            ReplayEvent::Deliver { time, .. } | ReplayEvent::Halt { time, .. } => {
                trace.extend_horizon(time);
            }
        }
    }
    println!("{}", trace.render(60));
}

fn describe_path(title: &str, path: &CriticalPath) {
    println!("{title}");
    println!("  hops:       {}", path.hops);
    println!("  bits:       {}", path.bits);
    println!(
        "  time span:  {}..={} (elapsed {})",
        path.start_time,
        path.end_time,
        path.elapsed()
    );
    let chain: Vec<String> = path.seqs.iter().map(|s| format!("#{s}")).collect();
    println!("  chain:      {}", chain.join(" -> "));
    println!("\n  | phase | messages | bits |");
    println!("  |---|---|---|");
    for (phase, stats) in &path.per_phase {
        let name = if phase.is_empty() {
            "(unspanned)"
        } else {
            phase
        };
        println!("  | {name} | {} | {} |", stats.messages, stats.bits);
    }
    println!();
}

fn print_critical_path(dag: &CausalDag) {
    println!("## critical path\n");
    println!("causal DAG: {} sends, {} roots", dag.len(), dag.roots());
    match dag.critical_path(PathWeight::Hops) {
        Some(path) => describe_path("\nlongest chain (by hops):", &path),
        None => println!("(no sends recorded)\n"),
    }
    if let Some(path) = dag.critical_path(PathWeight::Bits) {
        describe_path("heaviest chain (by bits):", &path);
    }
}

fn print_dag(dag: &CausalDag) {
    println!("## causal dag (graphviz dot)\n");
    let path = dag.critical_path(PathWeight::Hops);
    println!("{}", dag.to_dot(path.as_ref()));
}

/// `tracer merge [--out PATH] <shard.jsonl>...` — interleave per-shard
/// cluster recordings into the canonical merged recording (S27).
fn run_merge(args: impl Iterator<Item = String>) -> Result<(), String> {
    let mut out: Option<String> = None;
    let mut inputs: Vec<String> = Vec::new();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        if arg == "--out" {
            out = Some(args.next().ok_or("--out needs a value")?);
        } else {
            inputs.push(arg);
        }
    }
    if inputs.is_empty() {
        return Err("usage: tracer merge [--out PATH] <shard.jsonl>...".to_string());
    }
    let recordings = inputs
        .iter()
        .map(|path| {
            let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            Recording::parse_jsonl(&text).map_err(|e| format!("parse {path}: {e}"))
        })
        .collect::<Result<Vec<Recording>, String>>()?;
    let merged = merge::merge(&recordings).map_err(|e| e.to_string())?;
    let rendered = merged.to_jsonl();
    match &out {
        Some(path) => {
            std::fs::write(path, &rendered).map_err(|e| format!("write {path}: {e}"))?;
            eprintln!(
                "tracer: merged {} shards into {path} ({} events)",
                recordings.len(),
                merged.events.len()
            );
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let path = args.next().ok_or_else(|| {
        format!(
            "usage: tracer <recording.jsonl> [{}|{}]\n       tracer merge [--out PATH] <shard.jsonl>...",
            DEFAULT_SECTIONS.join("|"),
            EXPLICIT_SECTIONS.join("|")
        )
    })?;
    if path == "merge" {
        return run_merge(args);
    }
    let sections: Vec<String> = args.collect();
    for s in &sections {
        let known = |name: &&str| *name == s.as_str();
        if !DEFAULT_SECTIONS.iter().any(known) && !EXPLICIT_SECTIONS.iter().any(known) {
            return Err(format!(
                "unknown section {s:?} (expected one of {DEFAULT_SECTIONS:?} or {EXPLICIT_SECTIONS:?})"
            ));
        }
    }
    let wants = |name: &str| sections.iter().any(|s| s == name);
    let defaulted = |name: &str| sections.is_empty() || wants(name);
    let input = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
    let rec = Recording::parse_jsonl(&input).map_err(|e| format!("parse {path}: {e}"))?;
    // Causal sections replay the DAG; a version-1 recording has nothing to
    // replay and requesting them must fail loudly rather than print an
    // empty graph.
    let dag = if wants("critical-path") || wants("dag") {
        Some(CausalDag::from_recording(&rec).map_err(|e| format!("replay {path}: {e}"))?)
    } else {
        None
    };
    println!("# trace: {path}\n");
    if defaulted("summary") {
        print_summary(&rec);
    }
    if defaulted("phases") {
        print_phases(&rec);
    }
    if defaulted("profile") {
        print_profile(&rec);
    }
    if defaulted("diagram") {
        print_diagram(&rec);
    }
    if let Some(dag) = &dag {
        if wants("critical-path") {
            print_critical_path(dag);
        }
        if wants("dag") {
            print_dag(dag);
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("tracer: {msg}");
            ExitCode::FAILURE
        }
    }
}
