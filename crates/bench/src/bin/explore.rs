//! `explore` — exhaustively certify schedule independence of the §4
//! algorithms at small `n` via `sim::explore`.
//!
//! ```text
//! explore [--smoke] [--witness-dir DIR]
//! ```
//!
//! Each row enumerates every inequivalent delivery interleaving (sleep-set
//! DPOR) and checks that outputs and metered message counts match across
//! all of them. `--smoke` runs the `n = 3` subset (the CI push job);
//! the full run adds the `n = 4` rows. On a schedule race the two witness
//! recordings are written to `--witness-dir` (default `target/explore`)
//! and the exit code is 1.

use std::path::PathBuf;
use std::process::ExitCode;

use anonring_core::algorithms::async_input_dist::AsyncInputDist;
use anonring_core::algorithms::sync_and::SyncAnd;
use anonring_sim::explore::{Certificate, ExploreError, Explorer};
use anonring_sim::r#async::AsyncEngine;
use anonring_sim::synchronizer::Synchronized;
use anonring_sim::RingConfig;

/// One certification row: outcome of exploring a (algorithm, input) pair.
struct Row {
    algorithm: &'static str,
    inputs: String,
    executions: u64,
    sleep_blocked: u64,
    messages: u64,
    bits: u64,
}

/// Runs one certification, normalizing the output type away.
fn certify<P, F>(
    algorithm: &'static str,
    inputs: &[u8],
    make: F,
    witness_dir: &PathBuf,
) -> Result<Row, String>
where
    P: anonring_sim::r#async::AsyncProcess,
    F: FnMut() -> AsyncEngine<P>,
{
    match Explorer::new().explore(make) {
        Ok(Certificate {
            executions,
            sleep_blocked,
            fingerprint,
        }) => Ok(Row {
            algorithm,
            inputs: format!("{inputs:?}"),
            executions,
            sleep_blocked,
            messages: fingerprint.messages,
            bits: fingerprint.bits,
        }),
        Err(ExploreError::Race(race)) => {
            let mut paths = Vec::new();
            if std::fs::create_dir_all(witness_dir).is_ok() {
                for (tag, jsonl) in [
                    ("canonical", &race.canonical_witness),
                    ("divergent", &race.divergent_witness),
                ] {
                    let path =
                        witness_dir.join(format!("race-{algorithm}-n{}-{tag}.jsonl", inputs.len()));
                    if std::fs::write(&path, jsonl).is_ok() {
                        paths.push(path.display().to_string());
                    }
                }
            }
            Err(format!(
                "{algorithm} {inputs:?}: SCHEDULE RACE — canonical {:?} vs divergent {:?}; \
                 witnesses: {}",
                race.canonical,
                race.divergent,
                paths.join(", ")
            ))
        }
        Err(other) => Err(format!("{algorithm} {inputs:?}: {other}")),
    }
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut witness_dir = PathBuf::from("target/explore");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--witness-dir" => match args.next() {
                Some(dir) => witness_dir = PathBuf::from(dir),
                None => {
                    eprintln!("explore: --witness-dir needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: explore [--smoke] [--witness-dir DIR]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("explore: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let dist = |inputs: &[u8]| {
        let config = RingConfig::oriented(inputs.to_vec());
        let n = config.n();
        AsyncEngine::from_config(&config, move |_, input| AsyncInputDist::new(n, *input))
    };
    let and = |inputs: &[u8]| {
        let config = RingConfig::oriented(inputs.to_vec());
        let n = config.n();
        AsyncEngine::from_config(&config, move |_, &input| {
            Synchronized::new(SyncAnd::new(n, input))
        })
    };
    // The certification matrix covers the two schedule-sensitive paths of
    // §4: the native asynchronous algorithm (input-dist, §4.1) and the
    // synchronizer embedding every synchronous §4 algorithm runs through
    // on an async ring (and, §4.2 — small enough message counts for
    // exhaustive enumeration; the heavier sync algorithms share the same
    // certified envelope protocol and are deterministic given lockstep
    // delivery). n = 4 rows of the synchronized algorithm use inputs that
    // halt early where the full run would explode (see the pinned counts
    // in explore_certification.rs).
    let mut failures = Vec::new();
    let mut rows = Vec::new();
    type MakeRow<'a> = (&'static str, &'a [u8], bool);
    let matrix: Vec<MakeRow> = vec![
        ("input-dist", &[3, 7, 9], true),
        ("input-dist", &[1, 2, 3, 4], false),
        ("and", &[1, 0, 1], true),
        ("and", &[1, 1, 1], true),
        ("and", &[1, 0, 1, 1], false),
    ];
    for (algorithm, inputs, in_smoke) in matrix {
        if smoke && !in_smoke {
            continue;
        }
        let result = match algorithm {
            "input-dist" => certify(algorithm, inputs, || dist(inputs), &witness_dir),
            "and" => certify(algorithm, inputs, || and(inputs), &witness_dir),
            _ => unreachable!("matrix names are exhaustive"),
        };
        match result {
            Ok(row) => rows.push(row),
            Err(msg) => failures.push(msg),
        }
    }

    println!(
        "{:<16} {:<14} {:>10} {:>12} {:>9} {:>7}",
        "algorithm", "inputs", "classes", "pruned", "messages", "bits"
    );
    for row in &rows {
        println!(
            "{:<16} {:<14} {:>10} {:>12} {:>9} {:>7}",
            row.algorithm, row.inputs, row.executions, row.sleep_blocked, row.messages, row.bits
        );
    }
    for failure in &failures {
        eprintln!("explore: {failure}");
    }
    if failures.is_empty() {
        println!(
            "explore: certified {} row(s){}",
            rows.len(),
            if smoke { " (smoke subset)" } else { "" }
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
