//! `ringctl` — launch a loopback `ringd` cluster and certify the merge.
//!
//! ```text
//! cargo run --release -p anonring-bench --bin ringctl -- \
//!     --algorithm sync_and --n 6 --shards 3 --dir /tmp/cluster
//! ```
//!
//! Builds a cluster manifest (driver-default inputs, freshly reserved
//! loopback ports, processors tiled evenly), writes it to
//! `DIR/manifest.json`, launches one `ringd --cluster` subprocess per
//! shard, waits for all of them, merges the per-shard recordings into
//! the canonical recording (`DIR/merged.jsonl`), and certifies the run
//! against the asynchronous simulator: outputs, total messages and total
//! bits must agree, and the merged recording must pass the v2 causal
//! check. Prints one JSON summary line; exits nonzero on any failure.
//!
//! Flags:
//!
//! - `--algorithm NAME` — audit-table algorithm name (required)
//! - `--n N` — ring size (required, ≥ 2)
//! - `--shards M` — cluster size (default 2; `M ≤ N`)
//! - `--seed S` — delivery-jitter seed (default 0)
//! - `--capacity C` — per-link inbox capacity (default 8)
//! - `--max-delay-us D` — delivery-jitter bound (default 0)
//! - `--timeout-ms T` — cluster-wide deadline (default 30000)
//! - `--dir DIR` — working directory for manifest + recordings
//!   (required)
//! - `--ringd PATH` — shard driver binary (default: `ringd` next to
//!   this executable)
//! - `--label TEXT` — manifest label (default `ringctl`)

use std::path::PathBuf;
use std::process::ExitCode;

use anonring_bench::cluster::{build_manifest, launch_and_certify, sibling_ringd, ClusterConfig};
use anonring_bench::json::json_escape;
use anonring_core::algorithms::driver::Audited;

struct Cli {
    config: ClusterConfig,
    dir: PathBuf,
    ringd: PathBuf,
}

fn parse_args() -> Result<Cli, String> {
    let mut config = ClusterConfig::default();
    let mut algorithm: Option<Audited> = None;
    let mut n: Option<usize> = None;
    let mut dir: Option<PathBuf> = None;
    let mut ringd: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        let parsed = |flag: &str, raw: String| -> Result<u64, String> {
            raw.parse().map_err(|e| format!("{flag}: {e}"))
        };
        match arg.as_str() {
            "--algorithm" => {
                let name = value("--algorithm")?;
                algorithm = Some(Audited::from_name(&name).ok_or_else(|| {
                    format!("unknown algorithm {name:?} (audit-table names only)")
                })?);
            }
            "--n" => n = Some(parsed("--n", value("--n")?)? as usize),
            "--shards" => config.shards = parsed("--shards", value("--shards")?)? as usize,
            "--seed" => config.seed = parsed("--seed", value("--seed")?)?,
            "--capacity" => {
                config.capacity = parsed("--capacity", value("--capacity")?)? as usize;
            }
            "--max-delay-us" => {
                config.max_delay_us = parsed("--max-delay-us", value("--max-delay-us")?)?;
            }
            "--timeout-ms" => {
                config.timeout_ms = parsed("--timeout-ms", value("--timeout-ms")?)?;
            }
            "--dir" => dir = Some(PathBuf::from(value("--dir")?)),
            "--ringd" => ringd = Some(PathBuf::from(value("--ringd")?)),
            "--label" => config.label = value("--label")?,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    config.algorithm = algorithm.ok_or("missing --algorithm")?;
    config.n = n.ok_or("missing --n")?;
    let dir = dir.ok_or("missing --dir")?;
    Ok(Cli {
        config,
        dir,
        ringd: ringd.unwrap_or_else(sibling_ringd),
    })
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("ringctl: {e}");
            eprintln!(
                "usage: ringctl --algorithm NAME --n N --dir DIR [--shards M] [--seed S] \
                 [--capacity C] [--max-delay-us D] [--timeout-ms T] [--ringd PATH] [--label TEXT]"
            );
            return ExitCode::from(2);
        }
    };
    let manifest = match build_manifest(&cli.config) {
        Ok(manifest) => manifest,
        Err(e) => {
            eprintln!("ringctl: {e}");
            return ExitCode::from(2);
        }
    };
    match launch_and_certify(&manifest, &cli.ringd, &cli.dir) {
        Ok(certified) => {
            let mut outputs = String::from("[");
            for (i, output) in certified.outputs.iter().enumerate() {
                if i > 0 {
                    outputs.push(',');
                }
                outputs.push('"');
                outputs.push_str(&json_escape(output));
                outputs.push('"');
            }
            outputs.push(']');
            println!(
                "{{\"type\":\"cluster\",\"algorithm\":\"{}\",\"n\":{},\"shards\":{},\
                 \"verdict\":\"certified\",\"messages\":{},\"bits\":{},\"outputs\":{outputs},\
                 \"merged\":\"{}\"}}",
                cli.config.algorithm.name(),
                cli.config.n,
                cli.config.shards,
                certified.messages,
                certified.bits,
                json_escape(&cli.dir.join("merged.jsonl").display().to_string()),
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ringctl: {e}");
            ExitCode::FAILURE
        }
    }
}
