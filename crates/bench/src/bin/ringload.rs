//! `ringload` — open-loop load generator and serving gate for `ringd`.
//!
//! ```text
//! ringload run   --jobs K [--rate R] [--seed S] [spec flags] [--socket PATH]
//!                [--out BENCH_serving.json --revision L] [--wall]
//! ringload sweep --rates R1,R2,... --jobs K [--seed S] [spec flags]
//!                [--out BENCH_serving.json --revision L] [--wall]
//! ringload soak  --jobs K [--rate R] [--seed S] [spec flags]
//! ringload overhead --jobs K [--seed S] [spec flags] [--passes P]
//!                [--max-degradation PCT] [--out overhead.md]
//! ringload diff  <old.json> <new.json>
//! ```
//!
//! Spec flags: `--n N` (ring size, default 3), `--algorithms a,b,c`
//! (audit-table names, default `sync_and,async_input_dist,start_sync`),
//! `--transport threads|tcp`, `--no-conformance`, `--workers W`,
//! `--max-queue N`, `--retries N`, `--profile` (enable the S26 hot-path
//! profiler for the run).
//!
//! `run`/`sweep` drive an in-process `ringd` worker pool — or, with
//! `--socket PATH` (unix), a live external `ringd --socket` server, in
//! which case the generator also scrapes the `metrics` endpoint over
//! the protocol and validates the Prometheus exposition. Every job is a
//! pure function of `(--seed, position)`, so the deterministic fields
//! of the resulting `BENCH_serving.json` points (jobs, ok, failed,
//! certified, messages, bits, digest) are byte-reproducible; `--wall`
//! opts the advisory wall-clock fields into the artifact. `soak`
//! additionally asserts the serving invariants: bounded queue depth and
//! a fully-drained resident set (no counter-derived memory growth).
//! `diff` is the 0%-tolerance gate over two artifacts. `overhead` runs
//! the same full-speed load with the S26 profiler off and then on
//! (best of `--passes`, default 3), prints the comparison, optionally
//! writes it to `--out`, and fails if profiler-on achieved/s degrades
//! by more than `--max-degradation` percent (default 5).

use std::process::ExitCode;

use anonring_bench::load::{
    aggregate_results, arrival_schedule, diff_serving, job_line, run_load, run_soak, LoadReport,
    LoadSpec, ServingPoint, ServingSnapshot, ServingTrajectory,
};
use anonring_bench::ringd::ServeOptions;
use anonring_core::algorithms::driver::Audited;
use anonring_net::Transport;

fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    match args.iter().position(|a| a == name) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn take_option(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == name) {
        Some(i) => {
            if i + 1 >= args.len() {
                return Err(format!("{name} requires a value"));
            }
            let value = args.remove(i + 1);
            args.remove(i);
            Ok(Some(value))
        }
        None => Ok(None),
    }
}

fn take_number<T: std::str::FromStr>(
    args: &mut Vec<String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match take_option(args, name)? {
        Some(raw) => raw.parse().map_err(|_| format!("bad {name} value {raw:?}")),
        None => Ok(default),
    }
}

fn reject_leftovers(args: &[String]) -> Result<(), String> {
    match args.first() {
        Some(extra) => Err(format!("unexpected argument {extra:?}")),
        None => Ok(()),
    }
}

/// The flags every load-driving subcommand shares.
struct Shared {
    spec: LoadSpec,
    options: ServeOptions,
    socket: Option<String>,
    out: Option<String>,
    revision: Option<String>,
    wall: bool,
    profile: bool,
}

fn parse_shared(args: &mut Vec<String>) -> Result<Shared, String> {
    let jobs = take_number(args, "--jobs", 0usize)?;
    if jobs == 0 {
        return Err("--jobs <count> is required".into());
    }
    let rate = take_number(args, "--rate", 0u64)?;
    let seed = take_number(args, "--seed", 0u64)?;
    let mut spec = LoadSpec::default_mix(jobs, rate, seed);
    spec.n = take_number(args, "--n", spec.n)?;
    if spec.n < 2 {
        return Err("--n must be >= 2".into());
    }
    if let Some(list) = take_option(args, "--algorithms")? {
        spec.algorithms = list
            .split(',')
            .map(|name| {
                Audited::from_name(name.trim())
                    .ok_or_else(|| format!("unknown algorithm {name:?} (audit-table names only)"))
            })
            .collect::<Result<_, _>>()?;
        if spec.algorithms.is_empty() {
            return Err("--algorithms needs at least one name".into());
        }
    }
    if let Some(name) = take_option(args, "--transport")? {
        spec.transport = Transport::from_name(&name)
            .ok_or_else(|| format!("unknown transport {name:?} (threads|tcp)"))?;
    }
    if take_flag(args, "--no-conformance") {
        spec.conformance = false;
    }
    let options = ServeOptions {
        workers: take_number(args, "--workers", 0usize)?,
        max_queue: take_number(args, "--max-queue", 0usize)?,
        retries: take_number(args, "--retries", 0u32)?,
        ..ServeOptions::default()
    };
    let shared = Shared {
        spec,
        options,
        socket: take_option(args, "--socket")?,
        out: take_option(args, "--out")?,
        revision: take_option(args, "--revision")?,
        wall: take_flag(args, "--wall"),
        profile: take_flag(args, "--profile"),
    };
    if shared.profile {
        anonring_sim::profile::set_enabled(true);
    }
    Ok(shared)
}

fn print_report(rate: u64, report: &LoadReport) {
    println!(
        "| {rate} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |",
        report.summary.jobs,
        report.summary.ok,
        report.summary.failed,
        report.summary.requeued,
        report.certified,
        report.messages,
        report.bits,
        report.achieved_per_s,
        report.peak_queue_depth,
        report.wall_us / 1000
    );
}

fn print_header() {
    println!(
        "| rate/s | jobs | ok | failed | requeued | certified | messages | bits \
         | achieved/s | peak queue | wall ms |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|---|");
}

fn write_artifact(
    out: &Option<String>,
    revision: &Option<String>,
    points: Vec<ServingPoint>,
) -> Result<(), String> {
    let Some(path) = out else {
        return Ok(());
    };
    let revision = revision
        .as_deref()
        .ok_or("--out requires --revision <label> (snapshots are keyed by it)")?;
    let mut trajectory = if std::path::Path::new(path).exists() {
        let input = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        ServingTrajectory::parse(&input).map_err(|e| format!("parse {path}: {e}"))?
    } else {
        ServingTrajectory::new()
    };
    // Merge with any points this revision already measured (e.g. the
    // other transport's sweep in the same CI run).
    let mut merged = trajectory
        .snapshot(revision)
        .map(|s| s.points.clone())
        .unwrap_or_default();
    for point in points {
        match merged
            .iter_mut()
            .find(|p| p.rate_per_s == point.rate_per_s && p.transport == point.transport)
        {
            Some(slot) => *slot = point,
            None => merged.push(point),
        }
    }
    trajectory.upsert(ServingSnapshot {
        revision: revision.to_string(),
        points: merged,
    });
    std::fs::write(path, trajectory.to_json()).map_err(|e| format!("write {path}: {e}"))?;
    println!(
        "\nwrote {path} ({} snapshot{})",
        trajectory.snapshots.len(),
        if trajectory.snapshots.len() == 1 {
            ""
        } else {
            "s"
        }
    );
    Ok(())
}

/// Drives one schedule into a live `ringd --socket` server, scrapes the
/// metrics endpoint both ways, and validates the exposition shape.
#[cfg(unix)]
fn drive_socket(spec: &LoadSpec, path: &str) -> Result<LoadReport, String> {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    use std::time::Instant;

    use anonring_bench::json::Value;

    let stream = UnixStream::connect(path).map_err(|e| format!("connect {path}: {e}"))?;
    let reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("clone socket: {e}"))?,
    );
    let collector = std::thread::spawn(move || -> std::io::Result<Vec<String>> {
        let mut lines = Vec::new();
        for line in reader.lines() {
            let line = line?;
            let done = line.contains("\"type\":\"done\"");
            lines.push(line);
            if done {
                break;
            }
        }
        Ok(lines)
    });

    let schedule = arrival_schedule(spec);
    let started = Instant::now();
    let mut writer = stream;
    for (k, due) in schedule.iter().enumerate() {
        let elapsed = started.elapsed();
        if *due > elapsed {
            std::thread::sleep(*due - elapsed);
        }
        writeln!(writer, "{}", job_line(spec, k)).map_err(|e| format!("send job {k}: {e}"))?;
    }
    writeln!(writer, "{{\"type\":\"metrics\"}}").map_err(|e| format!("scrape: {e}"))?;
    writeln!(writer, "{{\"type\":\"metrics\",\"format\":\"prometheus\"}}")
        .map_err(|e| format!("scrape: {e}"))?;
    writer
        .shutdown(std::net::Shutdown::Write)
        .map_err(|e| format!("close batch: {e}"))?;
    let lines = collector
        .join()
        .map_err(|_| "socket reader panicked".to_string())?
        .map_err(|e| format!("read results: {e}"))?;
    let wall_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);

    let mut summary = anonring_bench::ringd::ServeSummary {
        jobs: 0,
        ok: 0,
        failed: 0,
        requeued: 0,
    };
    let mut scraped_json = false;
    let mut scraped_prometheus = false;
    for line in &lines {
        let value = Value::parse(line).map_err(|e| format!("bad line {line:?}: {e}"))?;
        match value.get("type").and_then(Value::as_str) {
            Some("done") => {
                let num = |key: &str| {
                    value
                        .get(key)
                        .and_then(Value::as_u64)
                        .map(|v| v as usize)
                        .ok_or_else(|| format!("done line missing {key:?}"))
                };
                summary.jobs = num("jobs")?;
                summary.ok = num("ok")?;
                summary.failed = num("failed")?;
                summary.requeued = num("requeued")?;
            }
            Some("metrics") => match value.get("format").and_then(Value::as_str) {
                Some("json") => {
                    value
                        .get("snapshot")
                        .and_then(|s| s.get("counters"))
                        .and_then(Value::as_array)
                        .ok_or("metrics JSON response lacks counters")?;
                    scraped_json = true;
                }
                Some("prometheus") => {
                    let body = value
                        .get("body")
                        .and_then(Value::as_str)
                        .ok_or("prometheus response lacks body")?;
                    for needle in [
                        "# TYPE ringd_jobs_accepted_total counter",
                        "# TYPE ringd_queue_depth gauge",
                        "ringd_jobs_accepted_total ",
                    ] {
                        if !body.contains(needle) {
                            return Err(format!("prometheus exposition lacks {needle:?}"));
                        }
                    }
                    scraped_prometheus = true;
                }
                other => return Err(format!("unknown metrics format {other:?}")),
            },
            _ => {}
        }
    }
    if !scraped_json || !scraped_prometheus {
        return Err("metrics scrape went unanswered".into());
    }
    let agg = aggregate_results(&lines.join("\n"))?;
    Ok(LoadReport {
        summary,
        certified: agg.certified,
        messages: agg.messages,
        bits: agg.bits,
        digest: agg.digest,
        wall_us,
        achieved_per_s: (summary.ok as u64)
            .saturating_mul(1_000_000)
            .checked_div(wall_us)
            .unwrap_or(0),
        // The server owns the gauges; over the wire they're advisory.
        peak_queue_depth: 0,
        peak_live_bytes: 0,
        snapshot: anonring_sim::telemetry::MetricsRegistry::new(),
    })
}

#[cfg(not(unix))]
fn drive_socket(_spec: &LoadSpec, _path: &str) -> Result<LoadReport, String> {
    Err("--socket requires a unix platform".into())
}

fn cmd_run(mut args: Vec<String>) -> Result<ExitCode, String> {
    let shared = parse_shared(&mut args)?;
    reject_leftovers(&args)?;
    let report = match &shared.socket {
        Some(path) => drive_socket(&shared.spec, path)?,
        None => run_load(&shared.spec, &shared.options)?,
    };
    print_header();
    print_report(shared.spec.rate, &report);
    let point = ServingPoint::from_report(&shared.spec, &report, shared.wall);
    write_artifact(&shared.out, &shared.revision, vec![point])?;
    Ok(if report.summary.failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_sweep(mut args: Vec<String>) -> Result<ExitCode, String> {
    let rates: Vec<u64> = take_option(&mut args, "--rates")?
        .ok_or("sweep requires --rates r1,r2,...")?
        .split(',')
        .map(|part| {
            part.trim()
                .parse::<u64>()
                .map_err(|_| format!("bad rate {part:?}"))
        })
        .collect::<Result<_, _>>()?;
    let shared = parse_shared(&mut args)?;
    reject_leftovers(&args)?;
    print_header();
    let mut points = Vec::new();
    let mut failed = false;
    for &rate in &rates {
        let spec = LoadSpec {
            rate,
            ..shared.spec.clone()
        };
        let report = match &shared.socket {
            Some(path) => drive_socket(&spec, path)?,
            None => run_load(&spec, &shared.options)?,
        };
        print_report(rate, &report);
        failed |= report.summary.failed > 0;
        points.push(ServingPoint::from_report(&spec, &report, shared.wall));
    }
    // Determinism across the curve: every point replays the same jobs,
    // so the gated fields must agree rate to rate.
    for pair in points.windows(2) {
        if (pair[0].messages, pair[0].bits, pair[0].digest)
            != (pair[1].messages, pair[1].bits, pair[1].digest)
        {
            return Err(format!(
                "saturation curve is not deterministic: rate {} and rate {} disagree",
                pair[0].rate_per_s, pair[1].rate_per_s
            ));
        }
    }
    write_artifact(&shared.out, &shared.revision, points)?;
    Ok(if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn cmd_soak(mut args: Vec<String>) -> Result<ExitCode, String> {
    let shared = parse_shared(&mut args)?;
    reject_leftovers(&args)?;
    if shared.socket.is_some() {
        return Err("soak drives the in-process pool (invariants need the live gauges)".into());
    }
    let report = run_soak(&shared.spec, &shared.options)?;
    print_header();
    print_report(shared.spec.rate, &report.load);
    println!(
        "\nsoak ok: {} jobs, queue peaked at {} (bound {}), resident bytes peaked at {} \
         (bound {}), fully drained",
        report.load.summary.jobs,
        report.load.peak_queue_depth,
        report.queue_bound,
        report.load.peak_live_bytes,
        report.live_bytes_bound
    );
    Ok(if report.load.summary.failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Measures the S26 profiler's end-to-end cost: the same full-speed load
/// with the profiler off and then on, best of `--passes` runs each,
/// compared on achieved jobs/s. The deterministic fields must agree
/// between the two modes (the profiler observes, it must not steer).
fn cmd_overhead(mut args: Vec<String>) -> Result<ExitCode, String> {
    let max_degradation: f64 = take_number(&mut args, "--max-degradation", 5.0)?;
    let passes: usize = take_number(&mut args, "--passes", 3)?;
    let shared = parse_shared(&mut args)?;
    reject_leftovers(&args)?;
    if shared.socket.is_some() {
        return Err("overhead drives the in-process pool (it toggles the profiler)".into());
    }
    let best_of = |enabled: bool| -> Result<LoadReport, String> {
        anonring_sim::profile::set_enabled(enabled);
        let mut best: Option<LoadReport> = None;
        for _ in 0..passes.max(1) {
            anonring_sim::profile::reset();
            let report = run_load(&shared.spec, &shared.options)?;
            if report.summary.failed > 0 {
                return Err(format!(
                    "overhead load failed {} job(s) with profiler {}",
                    report.summary.failed,
                    if enabled { "on" } else { "off" }
                ));
            }
            if best
                .as_ref()
                .is_none_or(|b| report.achieved_per_s > b.achieved_per_s)
            {
                best = Some(report);
            }
        }
        best.ok_or_else(|| "no overhead pass ran".to_string())
    };
    // One unmeasured warmup absorbs cold caches and thread spin-up.
    anonring_sim::profile::set_enabled(false);
    run_load(&shared.spec, &shared.options)?;
    let off = best_of(false)?;
    let on = best_of(true)?;
    anonring_sim::profile::set_enabled(false);
    if (off.messages, off.bits, &off.digest) != (on.messages, on.bits, &on.digest) {
        return Err(format!(
            "profiler changed the deterministic fields: off ({}, {}, {}) vs on ({}, {}, {})",
            off.messages, off.bits, off.digest, on.messages, on.bits, on.digest
        ));
    }
    let degradation = if off.achieved_per_s > on.achieved_per_s && off.achieved_per_s > 0 {
        ((off.achieved_per_s - on.achieved_per_s) as f64 / off.achieved_per_s as f64) * 100.0
    } else {
        0.0
    };
    let verdict = if degradation <= max_degradation {
        "PASS"
    } else {
        "FAIL"
    };
    let mut comparison = String::new();
    comparison.push_str("# Profiler overhead: ringload best-of comparison\n\n");
    comparison.push_str(&format!(
        "{} jobs, seed {}, n {}, transport {:?}, best of {} pass(es) per mode\n\n",
        shared.spec.jobs,
        shared.spec.seed,
        shared.spec.n,
        shared.spec.transport,
        passes.max(1)
    ));
    comparison.push_str("| profiler | jobs | ok | achieved/s | wall ms | messages | bits |\n");
    comparison.push_str("|---|---|---|---|---|---|---|\n");
    for (mode, report) in [("off", &off), ("on", &on)] {
        comparison.push_str(&format!(
            "| {mode} | {} | {} | {} | {} | {} | {} |\n",
            report.summary.jobs,
            report.summary.ok,
            report.achieved_per_s,
            report.wall_us / 1000,
            report.messages,
            report.bits
        ));
    }
    comparison.push_str(&format!(
        "\ndegradation: {degradation:.2}% of profiler-off achieved/s \
         (budget {max_degradation:.2}%) -> {verdict}\n"
    ));
    print!("{comparison}");
    if let Some(path) = &shared.out {
        std::fs::write(path, &comparison).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(if verdict == "PASS" {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_diff(mut args: Vec<String>) -> Result<ExitCode, String> {
    if args.len() != 2 {
        return Err("diff needs exactly two artifact files: diff <old> <new>".into());
    }
    let new_path = args.pop().expect("len checked");
    let old_path = args.pop().expect("len checked");
    let load = |path: &str| -> Result<ServingTrajectory, String> {
        let input = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        ServingTrajectory::parse(&input).map_err(|e| format!("parse {path}: {e}"))
    };
    let old = load(&old_path)?;
    let new = load(&new_path)?;
    let old_snap = old
        .latest()
        .ok_or_else(|| format!("{old_path} holds no snapshots"))?;
    let new_snap = new
        .latest()
        .ok_or_else(|| format!("{new_path} holds no snapshots"))?;
    let diff = diff_serving(old_snap, new_snap);
    println!(
        "serving gate: {:?} ({old_path}) -> {:?} ({new_path}), 0% tolerance",
        old_snap.revision, new_snap.revision
    );
    for warning in &diff.warnings {
        println!("warning: {warning}");
    }
    if diff.drifts.is_empty() {
        println!("no deterministic serving field drifted");
        return Ok(ExitCode::SUCCESS);
    }
    for drift in &diff.drifts {
        eprintln!("drift: {drift}");
    }
    eprintln!(
        "ringload: {} deterministic field(s) drifted",
        diff.drifts.len()
    );
    Ok(ExitCode::FAILURE)
}

fn run() -> Result<ExitCode, String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return Err(
            "usage: ringload run --jobs K [--rate R] [--seed S] [spec flags] [--socket PATH] \
             [--out FILE --revision L] [--wall] [--profile] | ringload sweep --rates r1,r2,... \
             --jobs K [...] | ringload soak --jobs K [...] | ringload overhead --jobs K [...] \
             [--passes P] [--max-degradation PCT] | ringload diff <old> <new>"
                .into(),
        );
    }
    let command = args.remove(0);
    match command.as_str() {
        "run" => cmd_run(args),
        "sweep" => cmd_sweep(args),
        "soak" => cmd_soak(args),
        "overhead" => cmd_overhead(args),
        "diff" => cmd_diff(args),
        other => Err(format!(
            "unknown command {other:?} (run | sweep | soak | overhead | diff)"
        )),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("ringload: {msg}");
            ExitCode::FAILURE
        }
    }
}
