//! `lint` — run the anonlint model-invariant pass over the workspace.
//!
//! ```text
//! lint [--root DIR] [--baseline FILE] [--write-baseline FILE] [--json FILE]
//! ```
//!
//! Exit codes: `0` clean (or fully grandfathered), `1` new findings,
//! `2` usage/IO error. With `--baseline`, findings covered by the
//! committed baseline are reported but do not fail the run; stale
//! baseline entries (paid-off debt) fail the run so the file shrinks.
//!
//! `--json FILE` additionally writes one JSON object per finding (fields
//! `lint`, `file`, `line`, `snippet`, `message`, `why`, `state` where
//! state is `new` or `grandfathered`), one per line, for CI annotation
//! tooling; `-` writes to stdout instead of the human format.

use std::path::PathBuf;
use std::process::ExitCode;

use anonring_anonlint::{lint_repo, Baseline, Finding};

/// Escapes `s` as a JSON string body (std-only, no serializer crate).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One finding as a single-line JSON object.
fn json_line(f: &Finding, state: &str) -> String {
    format!(
        "{{\"lint\":\"{}\",\"file\":\"{}\",\"line\":{},\"snippet\":\"{}\",\
         \"message\":\"{}\",\"why\":\"{}\",\"state\":\"{}\"}}",
        f.lint.name(),
        json_escape(&f.file),
        f.line,
        json_escape(&f.snippet),
        json_escape(&f.message),
        json_escape(f.lint.why()),
        state,
    )
}

fn locate_repo_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("crates/sim/src").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut path_arg = |name: &str| {
            args.next()
                .map(PathBuf::from)
                .ok_or_else(|| format!("{name} needs a path argument"))
        };
        match arg.as_str() {
            "--root" => root = Some(path_arg("--root")?),
            "--baseline" => baseline_path = Some(path_arg("--baseline")?),
            "--write-baseline" => write_baseline = Some(path_arg("--write-baseline")?),
            "--json" => json_out = Some(path_arg("--json")?),
            "--help" | "-h" => {
                println!(
                    "usage: lint [--root DIR] [--baseline FILE] \
                     [--write-baseline FILE] [--json FILE]"
                );
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => locate_repo_root().ok_or("cannot locate repo root (run from the workspace)")?,
    };
    let findings = lint_repo(&root).map_err(|e| format!("walking {}: {e}", root.display()))?;

    if let Some(path) = write_baseline {
        std::fs::write(&path, Baseline::render(&findings))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!(
            "lint: wrote baseline with {} finding(s) to {}",
            findings.len(),
            path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let baseline = match &baseline_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            Baseline::parse(&text)?
        }
        None => Baseline::empty(),
    };

    let (fresh, grandfathered, stale) = baseline.diff(&findings);

    let json_to_stdout = json_out.as_deref() == Some(std::path::Path::new("-"));
    if let Some(path) = &json_out {
        let mut report = String::new();
        for f in &grandfathered {
            report.push_str(&json_line(f, "grandfathered"));
            report.push('\n');
        }
        for f in &fresh {
            report.push_str(&json_line(f, "new"));
            report.push('\n');
        }
        if json_to_stdout {
            print!("{report}");
        } else {
            std::fs::write(path, &report)
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
        }
    }

    if !json_to_stdout {
        for f in &grandfathered {
            println!("{f} (grandfathered)");
        }
        for f in &fresh {
            println!("{f}");
        }
        for (lint, file) in &stale {
            println!("stale baseline entry: {lint}\t{file} (debt paid off — shrink the baseline)");
        }
    }

    if !json_to_stdout {
        println!(
            "lint: {} finding(s): {} new, {} grandfathered, {} stale baseline entr(y/ies)",
            findings.len(),
            fresh.len(),
            grandfathered.len(),
            stale.len()
        );
    }
    if fresh.is_empty() && stale.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("lint: {msg}");
            ExitCode::from(2)
        }
    }
}
