//! Open-loop load generation for `ringd` — the library behind the
//! `ringload` binary.
//!
//! An **open-loop** generator emits jobs on a fixed arrival schedule and
//! never waits for completions, so queueing delay shows up as measured
//! latency instead of silently throttling the offered rate (the
//! closed-loop "coordinated omission" failure mode). The schedule is
//! derived deterministically from a seed: job *k* of a [`LoadSpec`] has
//! the same id, algorithm, ring size, inputs and jitter seed at every
//! offered rate, which is what makes the certified outcome fields
//! (outputs, messages, bits) of a load run byte-reproducible and lets
//! `BENCH_serving.json` gate them at 0% tolerance while wall-clock
//! fields stay advisory.
//!
//! Three layers:
//!
//! 1. [`run_load`] drives an in-process [`serve_with`] worker pool
//!    through one schedule and folds the result stream plus the live
//!    [`ServingMetrics`] into a [`LoadReport`].
//! 2. [`run_sweep`] repeats that across offered rates (a saturation
//!    curve); [`run_soak`] streams a large schedule and asserts the
//!    serving invariants (bounded queue, drained resident set).
//! 3. [`ServingTrajectory`] pins the artifact schema of
//!    `BENCH_serving.json` and [`diff_serving`] is the regression gate:
//!    deterministic fields must be *identical*, wall-clock fields only
//!    warn.

use std::fmt::Write as _;
use std::io::{BufReader, Read};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use anonring_core::algorithms::driver::Audited;
use anonring_net::Transport;

use crate::json::{json_escape, Value};
use crate::ringd::{serve_with, ServeOptions, ServeSummary, ServingMetrics};

/// Current schema number of `BENCH_serving.json`.
pub const SERVING_SCHEMA: u64 = 1;

/// One deterministic workload description.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// How many jobs to stream.
    pub jobs: usize,
    /// Offered arrival rate in jobs/second; `0` means back-to-back
    /// (closed only by admission backpressure).
    pub rate: u64,
    /// Master seed: arrival jitter and per-job seeds derive from it.
    pub seed: u64,
    /// Ring size of every job.
    pub n: usize,
    /// Algorithms jobs cycle through (`job k` runs `algorithms[k % len]`).
    pub algorithms: Vec<Audited>,
    /// Transport every job runs on.
    pub transport: Transport,
    /// Whether jobs are certified against the simulator.
    pub conformance: bool,
}

impl LoadSpec {
    /// A small default workload: the two §4 input-distribution
    /// algorithms plus start synchronization, certified, on threads.
    #[must_use]
    pub fn default_mix(jobs: usize, rate: u64, seed: u64) -> LoadSpec {
        LoadSpec {
            jobs,
            rate,
            seed,
            n: 3,
            algorithms: vec![
                Audited::SyncAnd,
                Audited::AsyncInputDist,
                Audited::StartSync,
            ],
            transport: Transport::Threads,
            conformance: true,
        }
    }
}

/// SplitMix64 — the standard 64-bit seed expander (public domain
/// constants), small enough to keep this crate dependency-free.
fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    *state = z ^ (z >> 31);
}

/// Every number in the hand-rolled JSON artifacts round-trips through
/// an `f64` ([`Value::Number`]), so values that must survive a
/// parse/serialize cycle exactly are kept within the 53-bit mantissa.
const JSON_SAFE_MASK: u64 = (1 << 53) - 1;

fn mix(seed: u64, k: u64) -> u64 {
    let mut state = seed ^ k.wrapping_mul(0xd6e8_feb8_6659_fd93);
    splitmix64(&mut state);
    state
}

/// The job line for position `k` of the schedule — a pure function of
/// the spec, so every offered rate replays the identical workload.
#[must_use]
pub fn job_line(spec: &LoadSpec, k: usize) -> String {
    let algorithm = spec.algorithms[k % spec.algorithms.len()];
    format!(
        "{{\"id\":\"load-{k}\",\"algorithm\":\"{algorithm}\",\"n\":{},\
         \"seed\":{},\"transport\":\"{}\",\"conformance\":{}}}",
        spec.n,
        mix(spec.seed, k as u64) & JSON_SAFE_MASK,
        spec.transport,
        spec.conformance
    )
}

/// The arrival offset of each job. At rate `r` the mean spacing is
/// `1/r` with deterministic seeded jitter in `[0.5/r, 1.5/r)` —
/// arrival dispersion without changing the offered rate. Rate `0`
/// yields an all-zero schedule (back-to-back).
#[must_use]
pub fn arrival_schedule(spec: &LoadSpec) -> Vec<Duration> {
    if spec.rate == 0 {
        return vec![Duration::ZERO; spec.jobs];
    }
    let mean_us = 1_000_000.0 / spec.rate as f64;
    let mut at = 0.0f64;
    (0..spec.jobs)
        .map(|k| {
            let u = (mix(spec.seed ^ 0x5eed_0a11, k as u64) >> 11) as f64 / (1u64 << 53) as f64;
            at += mean_us * (0.5 + u);
            Duration::from_micros(at as u64)
        })
        .collect()
}

/// FNV-1a over one result line's deterministic fields; per-line hashes
/// combine by wrapping addition so the digest is independent of
/// completion order.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Deterministic aggregate of a result stream (order-independent).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultAggregate {
    /// Result lines whose conformance field reads `"certified"`.
    pub certified: u64,
    /// Total metered messages.
    pub messages: u64,
    /// Total metered bits.
    pub bits: u64,
    /// Order-independent digest of every result line's deterministic
    /// fields (masked to 53 bits so it survives the JSON artifact's
    /// `f64` number representation exactly).
    pub digest: u64,
}

/// Folds a protocol stream (one JSON object per line) into its
/// deterministic aggregate; non-result lines are skipped.
///
/// # Errors
///
/// A malformed line — that means the protocol itself broke.
pub fn aggregate_results(text: &str) -> Result<ResultAggregate, String> {
    let mut agg = ResultAggregate::default();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let value = Value::parse(line).map_err(|e| format!("bad result line {line:?}: {e}"))?;
        if value.get("type").and_then(Value::as_str) != Some("result") {
            continue;
        }
        let num = |key: &str| value.get(key).and_then(Value::as_u64).unwrap_or(0);
        agg.messages += num("messages");
        agg.bits += num("bits");
        let conformance = value
            .get("conformance")
            .and_then(Value::as_str)
            .unwrap_or("");
        agg.certified += u64::from(conformance == "certified");
        let mut pinned = String::new();
        for key in [
            "id",
            "algorithm",
            "n",
            "seed",
            "outputs",
            "messages",
            "bits",
            "conformance",
        ] {
            if let Some(v) = value.get(key) {
                let _ = write!(pinned, "{key}={v:?};");
            }
        }
        agg.digest = agg.digest.wrapping_add(fnv1a(pinned.as_bytes())) & JSON_SAFE_MASK;
    }
    Ok(agg)
}

/// What one load run measured. The deterministic half (`summary`,
/// `certified`, `messages`, `bits`, `digest`) is a pure function of the
/// [`LoadSpec`]; everything wall-clock-derived is advisory.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The serve-side accounting (jobs/ok/failed/requeued).
    pub summary: ServeSummary,
    /// Result lines whose conformance field reads `"certified"`.
    pub certified: u64,
    /// Total metered messages across all results.
    pub messages: u64,
    /// Total metered bits across all results.
    pub bits: u64,
    /// Order-independent digest of every result line's deterministic
    /// fields (id, algorithm, n, seed, outputs, messages, bits,
    /// conformance).
    pub digest: u64,
    /// Wall-clock duration of the whole run, admission to drain.
    pub wall_us: u64,
    /// Completions per second actually achieved (wall-clock).
    pub achieved_per_s: u64,
    /// Peak admission-queue depth (from the serving gauges).
    pub peak_queue_depth: u64,
    /// Peak resident job bytes (from the serving gauges).
    pub peak_live_bytes: u64,
    /// The final merged metrics registry (latency histograms included).
    pub snapshot: anonring_sim::telemetry::MetricsRegistry,
}

/// Feeds lines sent over a channel into a [`Read`] so the generator
/// thread can pace `serve_with`'s input; EOF when the sender drops.
struct ChannelReader {
    rx: mpsc::Receiver<String>,
    buf: Vec<u8>,
    pos: usize,
}

impl Read for ChannelReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.buf.len() {
            match self.rx.recv() {
                Ok(line) => {
                    self.buf = line.into_bytes();
                    self.buf.push(b'\n');
                    self.pos = 0;
                }
                Err(_) => return Ok(0),
            }
        }
        let n = (self.buf.len() - self.pos).min(out.len());
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Streams one schedule into an in-process `ringd` worker pool and
/// folds the outcome. `options.workers` sizes the pool as in
/// [`serve_with`]; `options.record_dir` works as usual (soak runs
/// should leave it unset).
///
/// # Errors
///
/// Serve-side I/O failures and malformed result lines (which would mean
/// the protocol itself broke).
pub fn run_load(spec: &LoadSpec, options: &ServeOptions) -> Result<LoadReport, String> {
    if spec.algorithms.is_empty() {
        return Err("load spec needs at least one algorithm".into());
    }
    let workers = if options.workers == 0 {
        std::thread::available_parallelism().map_or(2, usize::from)
    } else {
        options.workers
    };
    let metrics = ServingMetrics::new(workers);
    let schedule = arrival_schedule(spec);
    let (tx, rx) = mpsc::channel::<String>();

    let started = Instant::now();
    let (serve_result, wall_us) = std::thread::scope(|scope| {
        let metrics = &metrics;
        let handle = scope.spawn(move || {
            let reader = BufReader::new(ChannelReader {
                rx,
                buf: Vec::new(),
                pos: 0,
            });
            let mut out: Vec<u8> = Vec::new();
            serve_with(reader, &mut out, options, metrics).map(|summary| (summary, out))
        });
        for (k, due) in schedule.iter().enumerate() {
            let elapsed = started.elapsed();
            if *due > elapsed {
                std::thread::sleep(*due - elapsed);
            }
            if tx.send(job_line(spec, k)).is_err() {
                break; // serve side died; its error surfaces at join
            }
        }
        drop(tx);
        let result = handle
            .join()
            .unwrap_or_else(|_| Err(std::io::Error::other("serve thread panicked")));
        (result, as_us(started.elapsed()))
    });
    let (summary, raw) = serve_result.map_err(|e| format!("serve failed: {e}"))?;

    let text = String::from_utf8(raw).map_err(|e| format!("result stream not UTF-8: {e}"))?;
    let agg = aggregate_results(&text)?;

    let reg = metrics.snapshot();
    let gauge = |name| {
        reg.gauge(&anonring_sim::telemetry::MetricId::plain(name))
            .unwrap_or(0)
            .max(0) as u64
    };
    let achieved_per_s = (summary.ok as u64)
        .saturating_mul(1_000_000)
        .checked_div(wall_us)
        .unwrap_or(0);
    Ok(LoadReport {
        summary,
        certified: agg.certified,
        messages: agg.messages,
        bits: agg.bits,
        digest: agg.digest,
        wall_us,
        achieved_per_s,
        peak_queue_depth: gauge("ringd_queue_depth_peak"),
        peak_live_bytes: gauge("ringd_live_job_bytes_peak"),
        snapshot: reg,
    })
}

fn as_us(elapsed: Duration) -> u64 {
    u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX)
}

/// Runs the same workload at each offered rate — the saturation curve.
/// Every point replays identical jobs, so the deterministic fields must
/// agree across points (checked by the caller or the trajectory gate).
///
/// # Errors
///
/// The first failing point, labelled with its rate.
pub fn run_sweep(
    spec: &LoadSpec,
    rates: &[u64],
    options: &ServeOptions,
) -> Result<Vec<(u64, LoadReport)>, String> {
    rates
        .iter()
        .map(|&rate| {
            let point = LoadSpec {
                rate,
                ..spec.clone()
            };
            run_load(&point, options)
                .map(|r| (rate, r))
                .map_err(|e| format!("rate {rate}: {e}"))
        })
        .collect()
}

/// A soak verdict: the run itself plus the serving invariants.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// The underlying load run.
    pub load: LoadReport,
    /// Ceiling the queue was required to stay under.
    pub queue_bound: u64,
    /// Ceiling the resident job bytes were required to stay under.
    pub live_bytes_bound: u64,
}

/// Streams a (large) schedule and asserts the serving invariants: the
/// admission queue stayed within its configured bound, every byte of
/// admitted job line was released by drain time (the no-growth check on
/// the counter-derived resident set), and accounting balances.
///
/// # Errors
///
/// Any violated invariant, or the underlying [`run_load`] failure.
pub fn run_soak(spec: &LoadSpec, options: &ServeOptions) -> Result<SoakReport, String> {
    let load = run_load(spec, options)?;
    let queue_bound = if options.max_queue == 0 {
        crate::ringd::DEFAULT_MAX_QUEUE as u64
    } else {
        options.max_queue as u64
    };
    // Requeues lawfully overshoot the admission bound by at most the
    // worker count (each worker can hold one job it puts back).
    let workers = if options.workers == 0 {
        std::thread::available_parallelism().map_or(2, usize::from) as u64
    } else {
        options.workers as u64
    };
    let queue_ceiling = queue_bound + workers;
    if load.peak_queue_depth > queue_ceiling {
        return Err(format!(
            "queue depth peaked at {} (bound {queue_ceiling})",
            load.peak_queue_depth
        ));
    }
    let longest = (0..spec.jobs.min(spec.algorithms.len()))
        .map(|k| job_line(spec, k).len() as u64)
        .max()
        .unwrap_or(0);
    let live_bytes_bound = queue_ceiling
        .saturating_add(workers)
        .saturating_mul(longest + 64);
    if load.peak_live_bytes > live_bytes_bound {
        return Err(format!(
            "resident job bytes peaked at {} (bound {live_bytes_bound})",
            load.peak_live_bytes
        ));
    }
    let reg = &load.snapshot;
    let gauge = |name| {
        reg.gauge(&anonring_sim::telemetry::MetricId::plain(name))
            .unwrap_or(-1)
    };
    if gauge("ringd_queue_depth") != 0 || gauge("ringd_busy_workers") != 0 {
        return Err("queue or workers not drained at end of soak".into());
    }
    if gauge("ringd_live_job_bytes") != 0 {
        return Err(format!(
            "{} job bytes still resident after drain — the serving plane leaked",
            gauge("ringd_live_job_bytes")
        ));
    }
    let counter = |name| reg.counter(&anonring_sim::telemetry::MetricId::plain(name));
    let settled = counter("ringd_jobs_completed_total") + counter("ringd_jobs_failed_total");
    if counter("ringd_jobs_accepted_total") != settled {
        return Err(format!(
            "accounting imbalance: {} accepted, {settled} settled",
            counter("ringd_jobs_accepted_total")
        ));
    }
    Ok(SoakReport {
        load,
        queue_bound: queue_ceiling,
        live_bytes_bound,
    })
}

/// One measured point of a serving snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServingPoint {
    /// Offered rate (jobs/second; 0 = unthrottled).
    pub rate_per_s: u64,
    /// Transport token (`threads` or `tcp`).
    pub transport: String,
    /// Jobs streamed.
    pub jobs: u64,
    /// Jobs that produced a result line.
    pub ok: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Results certified against the simulator.
    pub certified: u64,
    /// Total metered messages (deterministic).
    pub messages: u64,
    /// Total metered bits (deterministic).
    pub bits: u64,
    /// Order-independent result digest (deterministic).
    pub digest: u64,
    /// Wall-clock run duration — advisory, never gated.
    pub wall_us: Option<u64>,
    /// Achieved completions/second — advisory, never gated.
    pub achieved_per_s: Option<u64>,
}

impl ServingPoint {
    /// Builds a point from a load run (`wall` opts the advisory
    /// wall-clock fields into the artifact).
    #[must_use]
    pub fn from_report(spec: &LoadSpec, report: &LoadReport, wall: bool) -> ServingPoint {
        ServingPoint {
            rate_per_s: spec.rate,
            transport: spec.transport.to_string(),
            jobs: report.summary.jobs as u64,
            ok: report.summary.ok as u64,
            failed: report.summary.failed as u64,
            certified: report.certified,
            messages: report.messages,
            bits: report.bits,
            digest: report.digest,
            wall_us: wall.then_some(report.wall_us),
            achieved_per_s: wall.then_some(report.achieved_per_s),
        }
    }
}

/// One revision's serving measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServingSnapshot {
    /// Caller-supplied revision label (never a wall clock).
    pub revision: String,
    /// Measured points, in sweep order.
    pub points: Vec<ServingPoint>,
}

/// The append-only `BENCH_serving.json` artifact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServingTrajectory {
    /// Snapshots, oldest first.
    pub snapshots: Vec<ServingSnapshot>,
}

impl ServingTrajectory {
    /// An empty trajectory.
    #[must_use]
    pub fn new() -> ServingTrajectory {
        ServingTrajectory::default()
    }

    /// The snapshot with the given revision label.
    #[must_use]
    pub fn snapshot(&self, revision: &str) -> Option<&ServingSnapshot> {
        self.snapshots.iter().find(|s| s.revision == revision)
    }

    /// The most recent snapshot.
    #[must_use]
    pub fn latest(&self) -> Option<&ServingSnapshot> {
        self.snapshots.last()
    }

    /// Replaces the snapshot with the same revision label, or appends.
    pub fn upsert(&mut self, snapshot: ServingSnapshot) {
        match self
            .snapshots
            .iter_mut()
            .find(|s| s.revision == snapshot.revision)
        {
            Some(slot) => *slot = snapshot,
            None => self.snapshots.push(snapshot),
        }
    }

    /// Serializes in the stable artifact schema (pinned by the
    /// `serving_golden` test in `crates/bench/tests`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{\n  \"schema\": {SERVING_SCHEMA},");
        out.push_str("  \"snapshots\": [");
        for (si, snap) in self.snapshots.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\n      \"revision\": \"{}\",\n      \"points\": [",
                if si > 0 { "," } else { "" },
                json_escape(&snap.revision)
            );
            for (pi, p) in snap.points.iter().enumerate() {
                let _ = write!(
                    out,
                    "{}\n        {{\"rate_per_s\": {}, \"transport\": \"{}\", \
                     \"jobs\": {}, \"ok\": {}, \"failed\": {}, \"certified\": {}, \
                     \"messages\": {}, \"bits\": {}, \"digest\": {}",
                    if pi > 0 { "," } else { "" },
                    p.rate_per_s,
                    json_escape(&p.transport),
                    p.jobs,
                    p.ok,
                    p.failed,
                    p.certified,
                    p.messages,
                    p.bits,
                    p.digest
                );
                if let Some(wall) = p.wall_us {
                    let _ = write!(out, ", \"wall_us\": {wall}");
                }
                if let Some(rate) = p.achieved_per_s {
                    let _ = write!(out, ", \"achieved_per_s\": {rate}");
                }
                out.push('}');
            }
            out.push_str("\n      ]\n    }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses the artifact back.
    ///
    /// # Errors
    ///
    /// A message naming the malformed field.
    pub fn parse(input: &str) -> Result<ServingTrajectory, String> {
        let doc = Value::parse(input)?;
        let schema = doc
            .get("schema")
            .and_then(Value::as_u64)
            .ok_or("missing \"schema\"")?;
        if schema != SERVING_SCHEMA {
            return Err(format!(
                "unsupported serving schema {schema} (this tool reads {SERVING_SCHEMA})"
            ));
        }
        let mut trajectory = ServingTrajectory::new();
        for snap in doc
            .get("snapshots")
            .and_then(Value::as_array)
            .ok_or("missing \"snapshots\"")?
        {
            let revision = snap
                .get("revision")
                .and_then(Value::as_str)
                .ok_or("snapshot missing \"revision\"")?
                .to_string();
            let mut points = Vec::new();
            for p in snap
                .get("points")
                .and_then(Value::as_array)
                .ok_or("snapshot missing \"points\"")?
            {
                let field = |key: &str| {
                    p.get(key)
                        .and_then(Value::as_u64)
                        .ok_or_else(|| format!("point missing numeric {key:?}"))
                };
                points.push(ServingPoint {
                    rate_per_s: field("rate_per_s")?,
                    transport: p
                        .get("transport")
                        .and_then(Value::as_str)
                        .ok_or("point missing \"transport\"")?
                        .to_string(),
                    jobs: field("jobs")?,
                    ok: field("ok")?,
                    failed: field("failed")?,
                    certified: field("certified")?,
                    messages: field("messages")?,
                    bits: field("bits")?,
                    digest: field("digest")?,
                    wall_us: p.get("wall_us").and_then(Value::as_u64),
                    achieved_per_s: p.get("achieved_per_s").and_then(Value::as_u64),
                });
            }
            trajectory
                .snapshots
                .push(ServingSnapshot { revision, points });
        }
        Ok(trajectory)
    }
}

/// The serving gate's verdict.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServingDiff {
    /// Deterministic fields that drifted (gate fails when nonempty) —
    /// unlike the perf trajectory there is no tolerance: certified
    /// serving outcomes must be identical.
    pub drifts: Vec<String>,
    /// Advisory observations: wall-clock deltas, coverage changes.
    pub warnings: Vec<String>,
}

/// Compares two serving snapshots point by point (matched on
/// `(rate_per_s, transport)`). Any difference in a deterministic field
/// is a drift; wall-clock fields and coverage changes only warn.
#[must_use]
pub fn diff_serving(old: &ServingSnapshot, new: &ServingSnapshot) -> ServingDiff {
    let mut diff = ServingDiff::default();
    for old_p in &old.points {
        let Some(new_p) = new
            .points
            .iter()
            .find(|p| p.rate_per_s == old_p.rate_per_s && p.transport == old_p.transport)
        else {
            diff.warnings.push(format!(
                "point rate={} transport={} missing from new snapshot",
                old_p.rate_per_s, old_p.transport
            ));
            continue;
        };
        let fields: [(&str, u64, u64); 7] = [
            ("jobs", old_p.jobs, new_p.jobs),
            ("ok", old_p.ok, new_p.ok),
            ("failed", old_p.failed, new_p.failed),
            ("certified", old_p.certified, new_p.certified),
            ("messages", old_p.messages, new_p.messages),
            ("bits", old_p.bits, new_p.bits),
            ("digest", old_p.digest, new_p.digest),
        ];
        for (name, old_v, new_v) in fields {
            if old_v != new_v {
                diff.drifts.push(format!(
                    "rate={} transport={} {name}: {old_v} -> {new_v}",
                    old_p.rate_per_s, old_p.transport
                ));
            }
        }
        if let (Some(old_wall), Some(new_wall)) = (old_p.wall_us, new_p.wall_us) {
            if new_wall > old_wall {
                diff.warnings.push(format!(
                    "rate={} transport={} wall_us: {old_wall} -> {new_wall} \
                     (wall clock is advisory)",
                    old_p.rate_per_s, old_p.transport
                ));
            }
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::{
        arrival_schedule, diff_serving, job_line, run_load, run_soak, LoadSpec, ServingPoint,
        ServingSnapshot, ServingTrajectory,
    };
    use crate::ringd::ServeOptions;
    use anonring_core::algorithms::driver::Audited;

    fn tiny_spec(jobs: usize, rate: u64) -> LoadSpec {
        LoadSpec {
            jobs,
            rate,
            seed: 7,
            n: 3,
            algorithms: vec![Audited::SyncAnd, Audited::StartSync],
            transport: anonring_net::Transport::Threads,
            conformance: true,
        }
    }

    #[test]
    fn job_lines_and_schedules_are_deterministic() {
        let spec = tiny_spec(8, 500);
        assert_eq!(job_line(&spec, 3), job_line(&spec, 3));
        assert_ne!(job_line(&spec, 3), job_line(&spec, 4));
        // Jobs are rate-independent; only the schedule changes.
        let fast = LoadSpec {
            rate: 0,
            ..spec.clone()
        };
        assert_eq!(job_line(&spec, 5), job_line(&fast, 5));
        let a = arrival_schedule(&spec);
        assert_eq!(a, arrival_schedule(&spec));
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "arrivals ascend");
        assert!(arrival_schedule(&fast).iter().all(|d| d.is_zero()));
    }

    #[test]
    fn load_runs_are_deterministic_in_the_gated_fields() {
        let spec = tiny_spec(6, 0);
        let options = ServeOptions {
            workers: 2,
            ..ServeOptions::default()
        };
        let a = run_load(&spec, &options).expect("load run");
        let b = run_load(&spec, &options).expect("load run");
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.summary.ok, 6);
        assert_eq!(a.certified, 6);
        assert_eq!(
            (a.messages, a.bits, a.digest),
            (b.messages, b.bits, b.digest)
        );
        assert!(a.messages > 0);
        // And rate-independent: a throttled run of the same spec agrees.
        let throttled =
            run_load(&LoadSpec { rate: 2000, ..spec }, &options).expect("throttled run");
        assert_eq!(
            (a.messages, a.bits, a.digest),
            (throttled.messages, throttled.bits, throttled.digest)
        );
    }

    #[test]
    fn soak_asserts_the_serving_invariants() {
        let report = run_soak(
            &tiny_spec(12, 0),
            &ServeOptions {
                workers: 2,
                max_queue: 4,
                ..ServeOptions::default()
            },
        )
        .expect("soak passes");
        assert!(report.load.peak_queue_depth <= report.queue_bound);
        assert!(report.load.peak_live_bytes <= report.live_bytes_bound);
        assert_eq!(report.load.summary.failed, 0);
    }

    fn point(rate: u64, messages: u64) -> ServingPoint {
        ServingPoint {
            rate_per_s: rate,
            transport: "threads".to_string(),
            jobs: 8,
            ok: 8,
            failed: 0,
            certified: 8,
            messages,
            bits: messages * 3,
            // High bit of the 53-bit digest range set: the round-trip
            // assert below would catch f64 precision loss.
            digest: (messages ^ 0xabcd) | (1 << 52),
            wall_us: Some(1000),
            achieved_per_s: Some(rate),
        }
    }

    #[test]
    fn serving_trajectory_round_trips_and_upserts() {
        let mut t = ServingTrajectory::new();
        t.upsert(ServingSnapshot {
            revision: "a".into(),
            points: vec![point(0, 96), point(500, 96)],
        });
        t.upsert(ServingSnapshot {
            revision: "b".into(),
            points: vec![point(0, 96)],
        });
        t.upsert(ServingSnapshot {
            revision: "a".into(),
            points: vec![point(0, 97)],
        });
        assert_eq!(t.snapshots.len(), 2);
        assert_eq!(t.snapshot("a").expect("a").points[0].messages, 97);
        assert_eq!(t.latest().expect("latest").revision, "b");
        let parsed = ServingTrajectory::parse(&t.to_json()).expect("parses");
        assert_eq!(parsed, t);
        let err = ServingTrajectory::parse("{\"schema\": 9, \"snapshots\": []}").unwrap_err();
        assert!(err.contains("schema 9"), "{err}");
    }

    #[test]
    fn the_gate_fails_on_any_deterministic_drift_and_warns_on_wall() {
        let old = ServingSnapshot {
            revision: "old".into(),
            points: vec![point(0, 96)],
        };
        let same = diff_serving(&old, &old);
        assert!(same.drifts.is_empty());
        let mut drifted = old.clone();
        drifted.points[0].messages = 97;
        drifted.points[0].digest = 1;
        let diff = diff_serving(&old, &drifted);
        assert_eq!(diff.drifts.len(), 2, "{diff:?}");
        assert!(diff.drifts[0].contains("messages: 96 -> 97"), "{diff:?}");
        let mut slower = old.clone();
        slower.points[0].wall_us = Some(2000);
        let diff = diff_serving(&old, &slower);
        assert!(diff.drifts.is_empty());
        assert_eq!(diff.warnings.len(), 1, "{diff:?}");
        let mut missing = old.clone();
        missing.points.clear();
        let diff = diff_serving(&old, &missing);
        assert!(diff.drifts.is_empty());
        assert_eq!(diff.warnings.len(), 1, "{diff:?}");
    }
}
