//! Arbitrary-ring-size lower-bound experiments (§7): E14–E16.

use anonring_core::algorithms::{compute::compute_sync, orientation, start_sync};
use anonring_core::functions::Xor;
use anonring_core::lower_bounds::witnesses::{
    orientation_sync_pair_arbitrary, start_sync_pair_arbitrary, xor_sync_pair_arbitrary,
};
use anonring_sim::WakeSchedule;

use crate::table::{f, Table};

/// E14 (§7.1.1): XOR fooling pairs exist at *every* ring size, built by
/// Theorem 7.5's inverse-matrix pull-back of the non-uniform homomorphism
/// `0→011, 1→10`. The certified bound is the measured-β Theorem 6.2 sum.
#[must_use]
pub fn e14_xor_arbitrary_n() -> Table {
    let mut t = Table::new(
        "E14",
        "§7.1.1 XOR at arbitrary n: pulled-back fooling pairs (k iterations, O(√n) bases)",
        &[
            "n",
            "k",
            "base lens",
            "pair verified",
            "certified LB",
            "measured",
        ],
    );
    let mut ok = true;
    for n in [100usize, 250, 500, 777, 1000] {
        let pair = xor_sync_pair_arbitrary(n, 10).unwrap();
        let verified = pair.verify_structure().is_ok();
        let w = anonring_words::constructions::xor_arbitrary(n).unwrap();
        let c1 = compute_sync(&pair.r1, &Xor).unwrap();
        let c2 = compute_sync(&pair.r2, &Xor).unwrap();
        ok &= verified && pair.outputs_disagree(&c1.values, &c2.values);
        let measured = c1.messages.max(c2.messages);
        ok &= (measured as f64) >= pair.bound();
        t.push(vec![
            n.to_string(),
            w.iterations.to_string(),
            format!("{}/{}", w.base_lens.0, w.base_lens.1),
            verified.to_string(),
            f(pair.bound()),
            measured.to_string(),
        ]);
    }
    t.set_verdict(if ok {
        "the non-uniform construction certifies Ω(n log n)-shaped bounds at non-power sizes \
         and the measured runs respect them"
    } else {
        "VIOLATION"
    });
    t
}

/// E15 (§7.2.1): orientation fooling witnesses at arbitrary **odd** sizes
/// via the two-stage construction `H(h^{2k}(0))` with its central
/// palindrome.
#[must_use]
pub fn e15_orientation_arbitrary_n() -> Table {
    let mut t = Table::new(
        "E15",
        "§7.2.1 orientation at arbitrary odd n: two-stage ε-words (palindrome block > n/6)",
        &[
            "n",
            "r/s blocks",
            "palindrome len",
            "pair verified",
            "certified LB",
            "measured",
        ],
    );
    let mut ok = true;
    for n in [3125usize, 4001] {
        let w = anonring_words::constructions::orientation_arbitrary(n).unwrap();
        let pair = orientation_sync_pair_arbitrary(n, 4).unwrap();
        let verified = pair.verify_structure().is_ok();
        let report = orientation::run(pair.r1.topology()).unwrap();
        let after = pair.r1.topology().with_switched(report.outputs());
        ok &= verified && after.is_oriented();
        ok &= (report.messages as f64) >= pair.bound();
        t.push(vec![
            n.to_string(),
            format!("{}/{}", w.r, w.s),
            w.palindrome_len.to_string(),
            verified.to_string(),
            f(pair.bound()),
            report.messages.to_string(),
        ]);
    }
    t.set_verdict(if ok {
        "two-stage ε-words yield verified fooling pairs at arbitrary odd sizes; Figure 4 pays \
         the bound and still orients"
    } else {
        "VIOLATION"
    });
    t
}

/// E16 (§7.2.2): start-synchronization wake adversaries at arbitrary
/// **even** sizes.
#[must_use]
pub fn e16_start_sync_arbitrary_n() -> Table {
    let mut t = Table::new(
        "E16",
        "§7.2.2 start synchronization at arbitrary even n: two-stage balanced wake words",
        &[
            "n",
            "pair verified",
            "certified LB",
            "measured",
            "simultaneous",
        ],
    );
    let mut ok = true;
    for n in [486usize, 1000, 2026] {
        let pair = start_sync_pair_arbitrary(n, 4).unwrap();
        let verified = pair.verify_structure().is_ok();
        let word: Vec<u8> = pair.r1.inputs().to_vec();
        let wake = WakeSchedule::from_word(&word).unwrap();
        let topology = anonring_sim::RingTopology::oriented(n).unwrap();
        let report = start_sync::run(&topology, &wake).unwrap();
        ok &= verified && report.halted_simultaneously();
        ok &= (report.messages as f64) >= pair.bound();
        t.push(vec![
            n.to_string(),
            verified.to_string(),
            f(pair.bound()),
            report.messages.to_string(),
            report.halted_simultaneously().to_string(),
        ]);
    }
    t.set_verdict(if ok {
        "balanced two-stage wake words certify bounds at arbitrary even sizes; Figure 5 pays them"
    } else {
        "VIOLATION"
    });
    t
}
