//! Asynchronous lower-bound experiments (§5): E7–E9.

use anonring_core::algorithms::compute::compute_async;
use anonring_core::bounds;
use anonring_core::functions::{And, Min};
use anonring_core::lower_bounds::random_functions::{
    canonical_rotation, necklaces_with_half_ones_run, theorem_5_4_probability_bound,
};
use anonring_core::lower_bounds::witnesses::{and_async_pair, orientation_async_pair};
use anonring_sim::r#async::SynchronizingScheduler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::table::Table;

/// E7 (Thm 5.1 / Cor 5.2): the AND fooling pair forces `n·⌊n/2⌋`
/// messages; the universal §4.1 algorithm pays `n(n−1)` on `1ⁿ` under the
/// synchronizing adversary — matching the refined tight bound.
#[must_use]
pub fn e07_and_lower_bound() -> Table {
    let mut t = Table::new(
        "E7",
        "Thm 5.1/Cor 5.2 asynchronous AND & MIN: measured ≥ n·⌊n/2⌋ (refined: = n(n−1))",
        &[
            "n",
            "pair verified",
            "bound",
            "refined",
            "measured AND",
            "measured MIN",
        ],
    );
    let mut ok = true;
    for n in [8usize, 16, 32, 64, 128] {
        let pair = and_async_pair(n);
        let verified = pair.verify_structure().is_ok();
        // Output disagreement: AND answers differ on the two inputs.
        let a1 = compute_async(&pair.r1, &And, &mut SynchronizingScheduler).unwrap();
        let a2 = compute_async(&pair.r2, &And, &mut SynchronizingScheduler).unwrap();
        ok &= verified && pair.outputs_disagree(&a1.values, &a2.values);
        let m1 = compute_async(&pair.r1, &Min, &mut SynchronizingScheduler).unwrap();
        ok &= a1.messages as f64 >= pair.bound();
        ok &= a1.messages == bounds::and_async_lower_refined(n as u64);
        t.push(vec![
            n.to_string(),
            verified.to_string(),
            pair.bound().to_string(),
            bounds::and_async_lower_refined(n as u64).to_string(),
            a1.messages.to_string(),
            m1.messages.to_string(),
        ]);
    }
    t.set_verdict(if ok {
        "fooling conditions verified; measured cost meets the refined n(n−1) bound exactly — \
         minimum with repeated inputs is Θ(n²) (vs Θ(n log n) with distinct labels, see E18)"
    } else {
        "VIOLATION"
    });
    t
}

/// E8 (Thm 5.3): orientation requires `n·⌊(n+2)/4⌋` messages. The
/// measured algorithm is the universal one: distribute everything, then
/// pick the majority orientation locally (§4.1, odd rings).
#[must_use]
pub fn e08_orientation_lower_bound() -> Table {
    let mut t = Table::new(
        "E8",
        "Thm 5.3 asynchronous orientation: measured ≥ n·⌊(n+2)/4⌋",
        &[
            "n",
            "pair verified",
            "twins",
            "bound",
            "measured",
            "oriented after",
        ],
    );
    let mut ok = true;
    for n in [9usize, 17, 33, 65, 129] {
        let pair = orientation_async_pair(n);
        let verified = pair.verify_structure().is_ok();
        // Run §4.1 input distribution on R2 (the half-and-half ring) and
        // orient by majority.
        let report =
            anonring_core::algorithms::async_input_dist::run(&pair.r2, &mut SynchronizingScheduler)
                .unwrap();
        let switches: Vec<bool> = report
            .outputs()
            .iter()
            .map(|view| {
                let same: usize = view.entries().iter().filter(|&&(s, ())| s).count();
                // Minority-orientation processors switch.
                2 * same < view.n()
            })
            .collect();
        let after = pair.r2.topology().with_switched(&switches);
        ok &= verified && after.is_oriented();
        ok &= report.messages as f64 >= pair.bound();
        t.push(vec![
            n.to_string(),
            verified.to_string(),
            format!("{}≡{}", pair.p1, pair.p2),
            pair.bound().to_string(),
            report.messages.to_string(),
            after.is_oriented().to_string(),
        ]);
    }
    t.set_verdict(if ok {
        "the majority rule orients every odd ring, at the unavoidable Θ(n²) message cost"
    } else {
        "VIOLATION"
    });
    t
}

/// E9 (Thm 5.4): almost all computable Boolean functions cost `≥ n²/4`
/// messages: the fraction of random necklace-functions agreeing on `1ⁿ`
/// and *every* half-run necklace is at most `2^{1−s}`.
#[must_use]
pub fn e09_random_functions() -> Table {
    let mut t = Table::new(
        "E9",
        "Thm 5.4 random functions: P[complexity ≤ n²/4] < 2^(1−s), s = #half-run necklaces",
        &["n", "s", "paper bound", "sampled cheap fraction", "samples"],
    );
    let mut rng = StdRng::seed_from_u64(9);
    let samples = 4000usize;
    let mut ok = true;
    for n in [8usize, 10, 12, 14, 16] {
        let half_runs = necklaces_with_half_ones_run(n);
        let s = half_runs.len();
        let all_ones = canonical_rotation((1u64 << n) - 1, n);
        // A random computable function = independent fair bits per
        // necklace; it is "cheap" only if it assigns every half-run
        // necklace the same value as 1^n (the Theorem 5.4 event).
        let mut cheap = 0usize;
        for _ in 0..samples {
            let ones_value: bool = rng.gen();
            let agree = half_runs.iter().all(|&neck| {
                if neck == all_ones {
                    true
                } else {
                    rng.gen::<bool>() == ones_value
                }
            });
            cheap += usize::from(agree);
        }
        let frac = cheap as f64 / samples as f64;
        let bound = theorem_5_4_probability_bound(n as u64);
        ok &= frac <= bound.min(1.0) + 0.02;
        t.push(vec![
            n.to_string(),
            s.to_string(),
            format!("{bound:.2e}"),
            format!("{frac:.4}"),
            samples.to_string(),
        ]);
    }
    t.set_verdict(if ok {
        "the sampled fraction of sub-quadratic functions dies off as the paper's 2^(1−s) predicts"
    } else {
        "VIOLATION"
    });
    t
}
