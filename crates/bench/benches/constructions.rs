//! Micro-benchmarks: the §6.2/§7 string machinery — homomorphism
//! iteration, symmetry-index evaluation and the arbitrary-size
//! constructions behind E14–E16.

use anonring_bench::microbench::Group;
use anonring_core::lower_bounds::witnesses::xor_sync_pair_arbitrary;
use anonring_sim::{symmetry_index, RingConfig};
use anonring_words::constructions::{orientation_arbitrary, start_sync_arbitrary, xor_arbitrary};
use anonring_words::{Homomorphism, Word};

fn bench_homomorphism_iteration() {
    let mut g = Group::new("homomorphism_iterate");
    let h = Homomorphism::parse("011", "100");
    for k in [8usize, 10, 12] {
        g.bench(&k.to_string(), || h.iterate(&Word::parse("0"), k));
    }
    g.finish();
}

fn bench_symmetry_index() {
    let mut g = Group::new("symmetry_index");
    for n in [243usize, 729] {
        let h = Homomorphism::parse("011", "100");
        let k = (n as f64).log(3.0).round() as usize;
        let word = h.iterate(&Word::parse("0"), k);
        let config = RingConfig::oriented(word.as_slice().to_vec());
        g.bench(&n.to_string(), || symmetry_index(&config, 4));
    }
    g.finish();
}

fn bench_arbitrary_constructions() {
    let mut g = Group::new("arbitrary_constructions");
    g.bench("xor_n_100000", || xor_arbitrary(100_000).unwrap());
    g.bench("orientation_n_99999", || {
        orientation_arbitrary(99_999).unwrap()
    });
    g.bench("start_sync_n_100000", || {
        start_sync_arbitrary(100_000).unwrap()
    });
    g.finish();
}

fn bench_verified_pair() {
    let mut g = Group::new("verified_fooling_pair");
    g.bench("xor_arbitrary_n_500_alpha_6", || {
        let pair = xor_sync_pair_arbitrary(500, 6).unwrap();
        pair.verify_structure().unwrap();
        pair.bound()
    });
    g.finish();
}

fn main() {
    bench_homomorphism_iteration();
    bench_symmetry_index();
    bench_arbitrary_constructions();
    bench_verified_pair();
}
