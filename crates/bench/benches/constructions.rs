//! Criterion benches: the §6.2/§7 string machinery — homomorphism
//! iteration, symmetry-index evaluation and the arbitrary-size
//! constructions behind E14–E16.

use anonring_core::lower_bounds::witnesses::xor_sync_pair_arbitrary;
use anonring_sim::{symmetry_index, RingConfig};
use anonring_words::constructions::{
    orientation_arbitrary, start_sync_arbitrary, xor_arbitrary,
};
use anonring_words::{Homomorphism, Word};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_homomorphism_iteration(c: &mut Criterion) {
    let mut g = c.benchmark_group("homomorphism_iterate");
    let h = Homomorphism::parse("011", "100");
    for k in [8usize, 10, 12] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| h.iterate(&Word::parse("0"), k));
        });
    }
    g.finish();
}

fn bench_symmetry_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("symmetry_index");
    g.sample_size(10);
    for n in [243usize, 729] {
        let h = Homomorphism::parse("011", "100");
        let k = (n as f64).log(3.0).round() as usize;
        let word = h.iterate(&Word::parse("0"), k);
        let config = RingConfig::oriented(word.as_slice().to_vec());
        g.bench_with_input(BenchmarkId::from_parameter(n), &config, |b, config| {
            b.iter(|| symmetry_index(config, 4));
        });
    }
    g.finish();
}

fn bench_arbitrary_constructions(c: &mut Criterion) {
    let mut g = c.benchmark_group("arbitrary_constructions");
    g.bench_function("xor_n_100000", |b| {
        b.iter(|| xor_arbitrary(100_000).unwrap());
    });
    g.bench_function("orientation_n_99999", |b| {
        b.iter(|| orientation_arbitrary(99_999).unwrap());
    });
    g.bench_function("start_sync_n_100000", |b| {
        b.iter(|| start_sync_arbitrary(100_000).unwrap());
    });
    g.finish();
}

fn bench_verified_pair(c: &mut Criterion) {
    let mut g = c.benchmark_group("verified_fooling_pair");
    g.sample_size(10);
    g.bench_function("xor_arbitrary_n_500_alpha_6", |b| {
        b.iter(|| {
            let pair = xor_sync_pair_arbitrary(500, 6).unwrap();
            pair.verify_structure().unwrap();
            pair.bound()
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_homomorphism_iteration,
    bench_symmetry_index,
    bench_arbitrary_constructions,
    bench_verified_pair
);
criterion_main!(benches);
