//! Micro-benchmarks: raw engine throughput and the labelled-ring
//! election baselines (E18's cost series).

use anonring_baselines::{chang_roberts, hirschberg_sinclair, peterson};
use anonring_bench::microbench::Group;
use anonring_sim::r#async::{
    Actions, AsyncEngine, AsyncProcess, FifoScheduler, RandomScheduler, SynchronizingScheduler,
};
use anonring_sim::sync::{Emit, Received, Step, SyncEngine, SyncProcess};
use anonring_sim::{Port, RingConfig, RingTopology};

/// Minimal synchronous workload: a token circles the ring once.
#[derive(Debug)]
struct SyncToken {
    n: u64,
    source: bool,
}

impl SyncProcess for SyncToken {
    type Msg = u64;
    type Output = ();
    fn step(&mut self, cycle: u64, rx: Received<u64>) -> Step<u64, ()> {
        if cycle == 0 && self.source {
            return Step::send_right(1);
        }
        if let Some(h) = rx.from_left {
            if h == self.n {
                return Step::halt(());
            }
            return Step::send_right(h + 1).and_halt(());
        }
        if cycle > 2 * self.n {
            return Step::halt(());
        }
        Step::idle()
    }
}

fn bench_sync_engine() {
    let mut g = Group::new("sync_engine_token_ring");
    for n in [64usize, 512, 4096] {
        g.bench_elements(&n.to_string(), n as u64, || {
            let topology = RingTopology::oriented(n).unwrap();
            let procs = (0..n)
                .map(|i| SyncToken {
                    n: n as u64,
                    source: i == 0,
                })
                .collect();
            SyncEngine::new(topology, procs).unwrap().run().unwrap()
        });
    }
    g.finish();
}

/// Minimal asynchronous workload: each processor relays once.
#[derive(Debug)]
struct AsyncRelay;

impl AsyncProcess for AsyncRelay {
    type Msg = u64;
    type Output = u64;
    fn on_start(&mut self) -> Actions<u64, u64> {
        Actions::send(Port::Right, 1)
    }
    fn on_message(&mut self, _from: Port, hops: u64) -> Actions<u64, u64> {
        Actions::send(Port::Right, hops + 1).and_halt(hops)
    }
}

fn bench_async_schedulers() {
    let mut g = Group::new("async_engine_schedulers");
    let n = 1024usize;
    let run = |scheduler: &mut dyn anonring_sim::r#async::Scheduler| {
        let topology = RingTopology::oriented(n).unwrap();
        let mut e = AsyncEngine::new(topology, (0..n).map(|_| AsyncRelay).collect()).unwrap();
        e.run(scheduler).unwrap()
    };
    g.bench_elements("synchronizing", 2 * n as u64, || {
        run(&mut SynchronizingScheduler)
    });
    g.bench_elements("fifo", 2 * n as u64, || run(&mut FifoScheduler));
    g.bench_elements("random", 2 * n as u64, || run(&mut RandomScheduler::new(7)));
    g.finish();
}

fn bench_elections() {
    let mut g = Group::new("e18_elections");
    for n in [64usize, 256] {
        let ids: Vec<u64> = (0..n as u64).map(|i| (i * 48271) % 999983).collect();
        let config = RingConfig::oriented(ids);
        g.bench(&format!("hirschberg_sinclair/{n}"), || {
            hirschberg_sinclair::run(&config, &mut FifoScheduler).unwrap()
        });
        g.bench(&format!("peterson/{n}"), || {
            peterson::run(&config, &mut FifoScheduler).unwrap()
        });
        g.bench(&format!("chang_roberts/{n}"), || {
            chang_roberts::run(&config, &mut FifoScheduler).unwrap()
        });
    }
    g.finish();
}

fn main() {
    bench_sync_engine();
    bench_async_schedulers();
    bench_elections();
}
