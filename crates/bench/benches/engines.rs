//! Criterion benches: raw engine throughput and the labelled-ring
//! election baselines (E18's cost series).

use anonring_baselines::{chang_roberts, hirschberg_sinclair, peterson};
use anonring_sim::r#async::{
    Actions, AsyncEngine, AsyncProcess, FifoScheduler, RandomScheduler, SynchronizingScheduler,
};
use anonring_sim::sync::{Received, Step, SyncEngine, SyncProcess};
use anonring_sim::{Port, RingConfig, RingTopology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

/// Minimal synchronous workload: a token circles the ring once.
#[derive(Debug)]
struct SyncToken {
    n: u64,
    source: bool,
}

impl SyncProcess for SyncToken {
    type Msg = u64;
    type Output = ();
    fn step(&mut self, cycle: u64, rx: Received<u64>) -> Step<u64, ()> {
        if cycle == 0 && self.source {
            return Step::send_right(1);
        }
        if let Some(h) = rx.from_left {
            if h == self.n {
                return Step::halt(());
            }
            return Step::send_right(h + 1).and_halt(());
        }
        if cycle > 2 * self.n {
            return Step::halt(());
        }
        Step::idle()
    }
}

fn bench_sync_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("sync_engine_token_ring");
    for n in [64usize, 512, 4096] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let topology = RingTopology::oriented(n).unwrap();
                let procs = (0..n)
                    .map(|i| SyncToken {
                        n: n as u64,
                        source: i == 0,
                    })
                    .collect();
                SyncEngine::new(topology, procs).unwrap().run().unwrap()
            });
        });
    }
    g.finish();
}

/// Minimal asynchronous workload: each processor relays once.
#[derive(Debug)]
struct AsyncRelay;

impl AsyncProcess for AsyncRelay {
    type Msg = u64;
    type Output = u64;
    fn on_start(&mut self) -> Actions<u64, u64> {
        Actions::send(Port::Right, 1)
    }
    fn on_message(&mut self, _from: Port, hops: u64) -> Actions<u64, u64> {
        Actions::send(Port::Right, hops + 1).and_halt(hops)
    }
}

fn bench_async_schedulers(c: &mut Criterion) {
    let mut g = c.benchmark_group("async_engine_schedulers");
    let n = 1024usize;
    g.throughput(Throughput::Elements(2 * n as u64));
    g.bench_function("synchronizing", |b| {
        b.iter(|| {
            let topology = RingTopology::oriented(n).unwrap();
            let mut e = AsyncEngine::new(topology, (0..n).map(|_| AsyncRelay).collect()).unwrap();
            e.run(&mut SynchronizingScheduler).unwrap()
        });
    });
    g.bench_function("fifo", |b| {
        b.iter(|| {
            let topology = RingTopology::oriented(n).unwrap();
            let mut e = AsyncEngine::new(topology, (0..n).map(|_| AsyncRelay).collect()).unwrap();
            e.run(&mut FifoScheduler).unwrap()
        });
    });
    g.bench_function("random", |b| {
        b.iter(|| {
            let topology = RingTopology::oriented(n).unwrap();
            let mut e = AsyncEngine::new(topology, (0..n).map(|_| AsyncRelay).collect()).unwrap();
            e.run(&mut RandomScheduler::new(7)).unwrap()
        });
    });
    g.finish();
}

fn bench_elections(c: &mut Criterion) {
    let mut g = c.benchmark_group("e18_elections");
    g.sample_size(20);
    for n in [64usize, 256] {
        let ids: Vec<u64> = (0..n as u64).map(|i| (i * 48271) % 999983).collect();
        let config = RingConfig::oriented(ids);
        g.bench_with_input(
            BenchmarkId::new("hirschberg_sinclair", n),
            &config,
            |b, config| {
                b.iter(|| hirschberg_sinclair::run(config, &mut FifoScheduler).unwrap());
            },
        );
        g.bench_with_input(BenchmarkId::new("peterson", n), &config, |b, config| {
            b.iter(|| peterson::run(config, &mut FifoScheduler).unwrap());
        });
        g.bench_with_input(
            BenchmarkId::new("chang_roberts", n),
            &config,
            |b, config| {
                b.iter(|| chang_roberts::run(config, &mut FifoScheduler).unwrap());
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_sync_engine, bench_async_schedulers, bench_elections);
criterion_main!(benches);
