//! Criterion benches: wall-clock cost of every paper algorithm across
//! ring sizes (one series per table/figure of the evaluation).

use anonring_core::algorithms::{
    async_input_dist, orientation, start_sync, start_sync_bits, sync_and, sync_input_dist,
};
use anonring_sim::r#async::SynchronizingScheduler;
use anonring_sim::{RingConfig, RingTopology, WakeSchedule};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bits(n: usize, seed: u64) -> Vec<u8> {
    (0..n)
        .map(|i| (((i as u64).wrapping_mul(2654435761).wrapping_add(seed)) >> 7 & 1) as u8)
        .collect()
}

fn bench_async_input_dist(c: &mut Criterion) {
    let mut g = c.benchmark_group("e01_async_input_dist");
    for n in [32usize, 64, 128, 256] {
        let config = RingConfig::oriented(bits(n, 1));
        g.throughput(Throughput::Elements((n * (n - 1)) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &config, |b, config| {
            b.iter(|| async_input_dist::run(config, &mut SynchronizingScheduler).unwrap());
        });
    }
    g.finish();
}

fn bench_sync_and(c: &mut Criterion) {
    let mut g = c.benchmark_group("e02_sync_and");
    for n in [64usize, 256, 1024] {
        let mut v = vec![1u8; n];
        v[0] = 0;
        let config = RingConfig::oriented(v);
        g.bench_with_input(BenchmarkId::from_parameter(n), &config, |b, config| {
            b.iter(|| sync_and::run(config).unwrap());
        });
    }
    g.finish();
}

fn bench_sync_input_dist(c: &mut Criterion) {
    let mut g = c.benchmark_group("e03_sync_input_dist");
    g.sample_size(10);
    for n in [27usize, 81, 243] {
        let config = RingConfig::oriented(bits(n, 3));
        g.bench_with_input(BenchmarkId::from_parameter(n), &config, |b, config| {
            b.iter(|| sync_input_dist::run(config).unwrap());
        });
    }
    g.finish();
}

fn bench_orientation(c: &mut Criterion) {
    let mut g = c.benchmark_group("e04_orientation");
    g.sample_size(10);
    for n in [27usize, 81, 243] {
        let topology = RingTopology::from_bits(&bits(n, 4)).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(n), &topology, |b, topology| {
            b.iter(|| orientation::run(topology).unwrap());
        });
    }
    g.finish();
}

fn bench_start_sync(c: &mut Criterion) {
    let mut g = c.benchmark_group("e05_e06_start_sync");
    g.sample_size(10);
    for n in [32usize, 128] {
        let topology = RingTopology::oriented(n).unwrap();
        let wake = WakeSchedule::random(n, 5);
        g.bench_with_input(
            BenchmarkId::new("figure5", n),
            &(&topology, &wake),
            |b, (topology, wake)| {
                b.iter(|| start_sync::run(topology, wake).unwrap());
            },
        );
        g.bench_with_input(
            BenchmarkId::new("bit_variant", n),
            &(&topology, &wake),
            |b, (topology, wake)| {
                b.iter(|| start_sync_bits::run(topology, wake).unwrap());
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_async_input_dist,
    bench_sync_and,
    bench_sync_input_dist,
    bench_orientation,
    bench_start_sync
);
criterion_main!(benches);
