//! Micro-benchmarks: wall-clock cost of every paper algorithm across
//! ring sizes (one series per table/figure of the evaluation).

use anonring_bench::microbench::Group;
use anonring_core::algorithms::{
    async_input_dist, orientation, start_sync, start_sync_bits, sync_and, sync_input_dist,
};
use anonring_sim::r#async::SynchronizingScheduler;
use anonring_sim::{RingConfig, RingTopology, WakeSchedule};

fn bits(n: usize, seed: u64) -> Vec<u8> {
    (0..n)
        .map(|i| (((i as u64).wrapping_mul(2654435761).wrapping_add(seed)) >> 7 & 1) as u8)
        .collect()
}

fn bench_async_input_dist() {
    let mut g = Group::new("e01_async_input_dist");
    for n in [32usize, 64, 128, 256] {
        let config = RingConfig::oriented(bits(n, 1));
        g.bench_elements(&n.to_string(), (n * (n - 1)) as u64, || {
            async_input_dist::run(&config, &mut SynchronizingScheduler).unwrap()
        });
    }
    g.finish();
}

fn bench_sync_and() {
    let mut g = Group::new("e02_sync_and");
    for n in [64usize, 256, 1024] {
        let mut v = vec![1u8; n];
        v[0] = 0;
        let config = RingConfig::oriented(v);
        g.bench(&n.to_string(), || sync_and::run(&config).unwrap());
    }
    g.finish();
}

fn bench_sync_input_dist() {
    let mut g = Group::new("e03_sync_input_dist");
    for n in [27usize, 81, 243] {
        let config = RingConfig::oriented(bits(n, 3));
        g.bench(&n.to_string(), || sync_input_dist::run(&config).unwrap());
    }
    g.finish();
}

fn bench_orientation() {
    let mut g = Group::new("e04_orientation");
    for n in [27usize, 81, 243] {
        let topology = RingTopology::from_bits(&bits(n, 4)).unwrap();
        g.bench(&n.to_string(), || orientation::run(&topology).unwrap());
    }
    g.finish();
}

fn bench_start_sync() {
    let mut g = Group::new("e05_e06_start_sync");
    for n in [32usize, 128] {
        let topology = RingTopology::oriented(n).unwrap();
        let wake = WakeSchedule::random(n, 5);
        g.bench(&format!("figure5/{n}"), || {
            start_sync::run(&topology, &wake).unwrap()
        });
        g.bench(&format!("bit_variant/{n}"), || {
            start_sync_bits::run(&topology, &wake).unwrap()
        });
    }
    g.finish();
}

fn main() {
    bench_async_input_dist();
    bench_sync_and();
    bench_sync_input_dist();
    bench_orientation();
    bench_start_sync();
}
