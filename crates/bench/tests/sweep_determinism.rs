//! Pins the sweep determinism contract: the E1 and E3 experiment grids
//! produce byte-identical tables whether they run on one worker thread or
//! many, because every grid cell derives its randomness from its own index.

use std::num::NonZeroUsize;

use anonring_bench::sweep::default_threads;
use anonring_bench::upper::{e01_with_threads, e03_with_threads};

fn threads(k: usize) -> NonZeroUsize {
    NonZeroUsize::new(k).unwrap()
}

#[test]
fn e1_grid_is_identical_across_thread_counts() {
    let sequential = e01_with_threads(threads(1));
    for k in [2usize, 4, default_threads().get()] {
        let parallel = e01_with_threads(threads(k));
        assert_eq!(sequential, parallel, "{k} threads");
        assert_eq!(sequential.to_string(), parallel.to_string(), "{k} threads");
    }
    assert!(
        sequential.verdict.contains("exactly"),
        "E1 invariant (messages = n(n−1)) must hold: {}",
        sequential.verdict
    );
}

#[test]
fn e3_grid_is_identical_across_thread_counts() {
    let sequential = e03_with_threads(threads(1));
    for k in [2usize, 4, default_threads().get()] {
        let parallel = e03_with_threads(threads(k));
        assert_eq!(sequential, parallel, "{k} threads");
        assert_eq!(sequential.to_string(), parallel.to_string(), "{k} threads");
    }
    assert!(
        sequential.verdict.contains("holds"),
        "E3 bound must hold: {}",
        sequential.verdict
    );
}

#[test]
fn default_thread_count_exercises_the_parallel_path() {
    assert!(default_threads().get() >= 2);
}
