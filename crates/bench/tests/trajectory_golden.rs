//! Golden test: the `BENCH_trajectory.json` schema is pinned byte for
//! byte (same contract as `flight_recorder_golden` in `crates/sim`).
//!
//! The regression gate diffs trajectory files across revisions, so the
//! serialization must stay stable; changing it requires bumping
//! `TRAJECTORY_SCHEMA` and updating the expected text here deliberately.

use anonring_bench::audit::{
    AlgorithmRun, AuditCell, Snapshot, Theorem, Trajectory, TRAJECTORY_SCHEMA,
};

const GOLDEN: &str = r#"{
  "schema": 1,
  "snapshots": [
    {
      "revision": "baseline",
      "algorithms": [
        {
          "algorithm": "async_input_dist",
          "theorem": "exact-n(n-1)",
          "cells": [
            {"n": 16, "messages": 240, "bits": 1018, "time": 8, "critical_path": 8},
            {"n": 32, "messages": 992, "bits": 4446, "time": 16, "critical_path": 16}
          ]
        },
        {
          "algorithm": "sync_and",
          "theorem": "linear",
          "cells": [
            {"n": 16, "messages": 18, "bits": 18, "time": 9, "critical_path": 2}
          ]
        }
      ]
    },
    {
      "revision": "pr-5",
      "algorithms": [
        {
          "algorithm": "sync_and",
          "theorem": "linear",
          "cells": [
            {"n": 16, "messages": 18, "bits": 18, "time": 9, "critical_path": 2, "wall_ms": 3}
          ]
        }
      ]
    }
  ]
}
"#;

fn cell(n: u64, messages: u64, bits: u64, time: u64, critical_path: u64) -> AuditCell {
    AuditCell {
        n,
        messages,
        bits,
        time,
        critical_path,
        wall_ms: None,
    }
}

fn golden_trajectory() -> Trajectory {
    let mut timed = cell(16, 18, 18, 9, 2);
    timed.wall_ms = Some(3);
    Trajectory {
        snapshots: vec![
            Snapshot {
                revision: "baseline".into(),
                algorithms: vec![
                    AlgorithmRun {
                        algorithm: "async_input_dist".into(),
                        theorem: Theorem::ExactQuadratic,
                        cells: vec![cell(16, 240, 1018, 8, 8), cell(32, 992, 4446, 16, 16)],
                    },
                    AlgorithmRun {
                        algorithm: "sync_and".into(),
                        theorem: Theorem::Linear,
                        cells: vec![cell(16, 18, 18, 9, 2)],
                    },
                ],
            },
            Snapshot {
                revision: "pr-5".into(),
                algorithms: vec![AlgorithmRun {
                    algorithm: "sync_and".into(),
                    theorem: Theorem::Linear,
                    cells: vec![timed],
                }],
            },
        ],
    }
}

#[test]
fn serialization_matches_the_golden_text_exactly() {
    assert_eq!(TRAJECTORY_SCHEMA, 1, "schema change requires a new golden");
    assert_eq!(golden_trajectory().to_json(), GOLDEN);
}

#[test]
fn golden_text_round_trips() {
    let parsed = Trajectory::parse(GOLDEN).unwrap();
    assert_eq!(parsed, golden_trajectory());
    assert_eq!(parsed.to_json(), GOLDEN);
}

/// The committed baseline at the repo root must stay parseable and carry
/// at least one snapshot of every audited algorithm.
#[test]
fn committed_baseline_parses() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trajectory.json");
    let text = std::fs::read_to_string(path).expect("read committed BENCH_trajectory.json");
    let trajectory = Trajectory::parse(&text).expect("parse committed baseline");
    let latest = trajectory.latest().expect("baseline holds a snapshot");
    let names: Vec<&str> = latest
        .algorithms
        .iter()
        .map(|a| a.algorithm.as_str())
        .collect();
    for required in [
        "async_input_dist",
        "sync_input_dist",
        "orientation",
        "start_sync",
        "sync_and",
        "dyn_broadcast",
    ] {
        assert!(names.contains(&required), "{names:?} missing {required}");
    }
    // The committed artifact is deterministic: no wall clocks.
    assert!(
        !text.contains("wall_ms"),
        "committed baseline must not carry wall-clock samples"
    );
    // And byte-stable under a parse -> serialize round trip.
    assert_eq!(trajectory.to_json(), text);
}
