//! End-to-end tests for the `tracer`, `lint` and `explore` CLIs (ISSUE 3:
//! nonzero exits and stderr diagnostics on bad input must stay covered).

use std::path::PathBuf;
use std::process::{Command, Output};

use anonring_sim::runtime::{Observer, SendEvent, Span, TraceEvent};
use anonring_sim::telemetry::{FlightRecorder, Recording};
use anonring_sim::PortId;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(tag);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn valid_recording() -> String {
    let mut rec = FlightRecorder::new(3, "cli-test");
    rec.on_event(&TraceEvent::Send(SendEvent {
        cycle: 1,
        from: 0,
        to: 1,
        port: PortId::LEFT,
        bits: 4,
        seq: 0,
        lamport: 1,
        parent: None,
        span: Some(Span::new("probe", 0)),
    }));
    rec.on_event(&TraceEvent::Deliver {
        time: 1,
        to: 1,
        port: PortId::LEFT,
        seq: 0,
        dropped: false,
    });
    rec.on_event(&TraceEvent::Halt {
        time: 2,
        processor: 1,
    });
    rec.to_jsonl()
}

fn tracer(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tracer"))
        .args(args)
        .output()
        .expect("spawn tracer")
}

#[test]
fn tracer_renders_a_valid_recording() {
    let dir = scratch_dir("tracer-valid");
    let path = dir.join("run.jsonl");
    std::fs::write(&path, valid_recording()).expect("write recording");
    let out = tracer(&[path.to_str().expect("utf-8 path")]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("## summary"), "{stdout}");
    assert!(stdout.contains("messages:   1"), "{stdout}");
}

#[test]
fn tracer_rejects_unparseable_recordings_with_diagnostics() {
    let dir = scratch_dir("tracer-malformed");
    let path = dir.join("bad.jsonl");
    let mut jsonl = valid_recording();
    jsonl.push_str("{\"type\":\"send\",\"t\":broken}\n");
    std::fs::write(&path, &jsonl).expect("write recording");
    let out = tracer(&[path.to_str().expect("utf-8 path")]);
    assert!(!out.status.success(), "must exit nonzero on parse failure");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("tracer:"), "{stderr}");
    // The parse error carries the 1-based line number and a snippet of
    // the offending line (the RecordingError bugfix of this PR).
    let bad_line = jsonl.lines().count();
    assert!(stderr.contains(&format!("line {bad_line}")), "{stderr}");
    assert!(stderr.contains("broken"), "{stderr}");
}

#[test]
fn tracer_rejects_missing_files_and_unknown_sections() {
    let out = tracer(&["/nonexistent/recording.jsonl"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("tracer:"));

    let dir = scratch_dir("tracer-sections");
    let path = dir.join("run.jsonl");
    std::fs::write(&path, valid_recording()).expect("write recording");
    let out = tracer(&[path.to_str().expect("utf-8 path"), "no-such-section"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown section"), "{stderr}");
}

#[test]
fn tracer_summary_includes_the_quantile_table() {
    let dir = scratch_dir("tracer-quantiles");
    let path = dir.join("run.jsonl");
    std::fs::write(&path, valid_recording()).expect("write recording");
    let out = tracer(&[path.to_str().expect("utf-8 path"), "summary"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("| distribution | count | max | mean | p50 | p95 | p99 | p999 |"),
        "{stdout}"
    );
    assert!(stdout.contains("| message bits | 1 | 4 |"), "{stdout}");
    assert!(stdout.contains("| sends per cycle |"), "{stdout}");
}

#[test]
fn tracer_profile_emits_collapsed_stacks_for_net_recordings() {
    let dir = scratch_dir("tracer-collapsed");
    let path = dir.join("net.jsonl");
    let mut rec = FlightRecorder::new(3, "cli-test").with_engine("net");
    rec.on_event(&TraceEvent::Send(SendEvent {
        cycle: 1,
        from: 0,
        to: 1,
        port: PortId::LEFT,
        bits: 4,
        seq: 0,
        lamport: 1,
        parent: None,
        span: Some(Span::new("probe", 0)),
    }));
    rec.on_event(&TraceEvent::Deliver {
        time: 1,
        to: 1,
        port: PortId::LEFT,
        seq: 0,
        dropped: false,
    });
    rec.on_event(&TraceEvent::Halt {
        time: 2,
        processor: 1,
    });
    let mut recording = Recording::parse_jsonl(&rec.to_jsonl()).expect("parse recording");
    recording.attach_wall_stamps(&[10, 35, 40]);
    std::fs::write(&path, recording.to_jsonl()).expect("write recording");
    let out = tracer(&[path.to_str().expect("utf-8 path"), "profile"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("collapsed stacks (pipe to flamegraph.pl):"),
        "{stdout}"
    );
    // First event anchors the wall clock (charged 0); the deliver at 35
    // is charged the 25us since the send at 10. Frame order is
    // phase;algorithm;operation — flamegraph.pl input.
    assert!(stdout.contains("probe;cli-test;send 0"), "{stdout}");
    assert!(stdout.contains("probe;cli-test;deliver 25"), "{stdout}");
    assert!(stdout.contains("top wall-time sinks:"), "{stdout}");
    assert!(
        stdout.contains("| 1 | probe | deliver | 1 | 25 |"),
        "{stdout}"
    );

    // Simulator recordings carry no wall stamps: no collapsed stacks.
    let sim_path = dir.join("sim.jsonl");
    std::fs::write(&sim_path, valid_recording()).expect("write recording");
    let out = tracer(&[sim_path.to_str().expect("utf-8 path"), "profile"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("collapsed stacks"), "{stdout}");
}

#[test]
fn tracer_renders_causal_sections_on_explicit_request_only() {
    let dir = scratch_dir("tracer-causal");
    let path = dir.join("run.jsonl");
    std::fs::write(&path, valid_recording()).expect("write recording");

    // Default output: the original four sections, no causal replay.
    let out = tracer(&[path.to_str().expect("utf-8 path")]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("## critical path"), "{stdout}");
    assert!(!stdout.contains("digraph causal"), "{stdout}");

    let out = tracer(&[path.to_str().expect("utf-8 path"), "critical-path", "dag"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("## critical path"), "{stdout}");
    assert!(stdout.contains("longest chain (by hops):"), "{stdout}");
    assert!(stdout.contains("chain:      #0"), "{stdout}");
    assert!(stdout.contains("| probe | 1 | 4 |"), "{stdout}");
    assert!(stdout.contains("digraph causal"), "{stdout}");
    assert!(stdout.contains("color=red"), "{stdout}");
}

#[test]
fn tracer_rejects_causal_sections_on_version_1_recordings() {
    let dir = scratch_dir("tracer-causal-v1");
    let path = dir.join("v1.jsonl");
    let v1 = "{\"type\":\"meta\",\"version\":1,\"n\":2,\"label\":\"old\",\"truncated\":0}\n\
              {\"type\":\"send\",\"t\":0,\"from\":0,\"to\":1,\"port\":\"left\",\"bits\":2}\n";
    std::fs::write(&path, v1).expect("write recording");

    // The default sections still render a v1 recording…
    let out = tracer(&[path.to_str().expect("utf-8 path")]);
    assert!(out.status.success(), "{out:?}");

    // …but asking for causal replay is a hard error naming the version.
    let out = tracer(&[path.to_str().expect("utf-8 path"), "critical-path"]);
    assert!(!out.status.success(), "v1 has no causal stamps");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("version 1"), "{stderr}");
    assert!(stderr.contains("re-record"), "{stderr}");
}

#[test]
fn lint_cli_flags_a_seeded_violation_and_passes_a_clean_tree() {
    // A miniature repo layout with one seeded anonymity breach.
    let root = scratch_dir("lint-seeded");
    let algos = root.join("crates/core/src/algorithms");
    let sim = root.join("crates/sim/src");
    let net = root.join("crates/net/src");
    let bench = root.join("crates/bench/src");
    std::fs::create_dir_all(&algos).expect("mkdir");
    std::fs::create_dir_all(&sim).expect("mkdir");
    std::fs::create_dir_all(&net).expect("mkdir");
    std::fs::create_dir_all(&bench).expect("mkdir");
    // The serving and cluster paths are linted as single-file roots.
    std::fs::write(bench.join("ringd.rs"), "fn quiet() {}\n").expect("write fixture");
    std::fs::write(bench.join("load.rs"), "fn quiet() {}\n").expect("write fixture");
    std::fs::write(bench.join("cluster.rs"), "fn quiet() {}\n").expect("write fixture");
    std::fs::write(net.join("cluster.rs"), "fn quiet() {}\n").expect("write fixture");
    std::fs::write(net.join("manifest.rs"), "fn quiet() {}\n").expect("write fixture");
    std::fs::write(
        algos.join("bad.rs"),
        "fn make(config: &C) { E::from_config(config, |i, v| P::new(i, v)); }\n",
    )
    .expect("write fixture");

    let out = Command::new(env!("CARGO_BIN_EXE_lint"))
        .args(["--root", root.to_str().expect("utf-8 path")])
        .output()
        .expect("spawn lint");
    assert!(!out.status.success(), "seeded violation must fail the run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("anonymity-breach"), "{stdout}");
    assert!(stdout.contains("bad.rs:1"), "{stdout}");

    std::fs::write(algos.join("bad.rs"), "fn quiet() {}\n").expect("rewrite fixture");
    let out = Command::new(env!("CARGO_BIN_EXE_lint"))
        .args(["--root", root.to_str().expect("utf-8 path")])
        .output()
        .expect("spawn lint");
    assert!(out.status.success(), "clean tree must pass: {out:?}");
}

#[test]
fn explore_smoke_certifies() {
    let dir = scratch_dir("explore-smoke");
    let out = Command::new(env!("CARGO_BIN_EXE_explore"))
        .args([
            "--smoke",
            "--witness-dir",
            dir.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("spawn explore");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("certified"), "{stdout}");
    assert!(stdout.contains("input-dist"), "{stdout}");
}
