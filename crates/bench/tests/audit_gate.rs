//! End-to-end tests for the `audit` CLI: the regression gate must fail
//! loudly (nonzero exit, named cells) on a seeded cost inflation, and the
//! `run`/`fit` pipeline must work against a real measured sweep.

use std::path::PathBuf;
use std::process::{Command, Output};

use anonring_bench::audit::{Trajectory, DEFAULT_GRID};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(tag);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn audit(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_audit"))
        .args(args)
        .output()
        .expect("spawn audit")
}

fn synthetic_trajectory(revision: &str, messages_at_64: u64) -> String {
    format!(
        r#"{{
  "schema": 1,
  "snapshots": [
    {{
      "revision": "{revision}",
      "algorithms": [
        {{
          "algorithm": "sync_input_dist",
          "theorem": "n-log-n",
          "cells": [
            {{"n": 16, "messages": 200, "bits": 800, "time": 20, "critical_path": 18}},
            {{"n": 64, "messages": {messages_at_64}, "bits": 4800, "time": 90, "critical_path": 80}}
          ]
        }}
      ]
    }}
  ]
}}
"#
    )
}

/// The seeded-regression criterion: inflate one metered cost in an
/// otherwise identical snapshot and the gate must exit nonzero naming the
/// offending cell.
#[test]
fn diff_gate_fails_on_a_seeded_cost_inflation() {
    let dir = scratch_dir("audit-gate-seeded");
    let old = dir.join("old.json");
    let new = dir.join("new.json");
    std::fs::write(&old, synthetic_trajectory("base", 1200)).expect("write old");
    std::fs::write(&new, synthetic_trajectory("inflated", 1500)).expect("write new");

    let out = audit(&[
        "diff",
        old.to_str().expect("utf-8"),
        new.to_str().expect("utf-8"),
    ]);
    assert!(!out.status.success(), "inflated cost must fail the gate");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("sync_input_dist n=64 messages: 1200 -> 1500"),
        "{stderr}"
    );
    assert!(stderr.contains("+25.0%"), "{stderr}");

    // The same pair passes under a generous tolerance…
    let out = audit(&[
        "diff",
        old.to_str().expect("utf-8"),
        new.to_str().expect("utf-8"),
        "--tolerance",
        "30",
    ]);
    assert!(out.status.success(), "{out:?}");

    // …and identical snapshots are always clean.
    let out = audit(&[
        "diff",
        old.to_str().expect("utf-8"),
        old.to_str().expect("utf-8"),
    ]);
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("no deterministic cost regressed"));
}

#[test]
fn diff_reports_wall_clock_as_warning_only() {
    let dir = scratch_dir("audit-gate-wall");
    let with_wall = |wall: u64| {
        synthetic_trajectory("w", 1200).replace(
            "\"critical_path\": 80}",
            &format!("\"critical_path\": 80, \"wall_ms\": {wall}}}"),
        )
    };
    let old = dir.join("old.json");
    let new = dir.join("new.json");
    std::fs::write(&old, with_wall(10)).expect("write old");
    std::fs::write(&new, with_wall(500)).expect("write new");
    let out = audit(&[
        "diff",
        old.to_str().expect("utf-8"),
        new.to_str().expect("utf-8"),
    ]);
    assert!(out.status.success(), "wall clock must not gate: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("warning:"), "{stdout}");
    assert!(stdout.contains("wall_ms: 10 -> 500"), "{stdout}");
}

#[test]
fn malformed_trajectories_and_usage_errors_exit_nonzero() {
    let dir = scratch_dir("audit-gate-bad");
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{\"schema\": 99, \"snapshots\": []}").expect("write bad");
    let out = audit(&["fit", "--trajectory", bad.to_str().expect("utf-8")]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("schema 99"));

    let out = audit(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = audit(&["run"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--revision"));

    let out = audit(&["diff", "only-one.json"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("exactly two"));
}

/// `run` then `fit` on a real (small-grid) sweep: the measured curves
/// must match the paper's theorems, and re-running with the same
/// revision label must upsert rather than append.
#[test]
fn run_then_fit_roundtrip_on_a_small_grid() {
    let dir = scratch_dir("audit-run-fit");
    let path = dir.join("trajectory.json");
    let path_str = path.to_str().expect("utf-8");
    let out = audit(&[
        "run",
        "--revision",
        "test-a",
        "--trajectory",
        path_str,
        "--grid",
        "16,32,64",
    ]);
    assert!(out.status.success(), "{out:?}");
    let out = audit(&[
        "run",
        "--revision",
        "test-a",
        "--trajectory",
        path_str,
        "--grid",
        "16,32,64",
    ]);
    assert!(out.status.success(), "{out:?}");
    let trajectory = Trajectory::parse(&std::fs::read_to_string(&path).expect("read")).unwrap();
    assert_eq!(trajectory.snapshots.len(), 1, "same revision must upsert");
    assert_eq!(trajectory.latest().unwrap().algorithms.len(), 6);

    let out = audit(&["fit", "--trajectory", path_str]);
    assert!(
        out.status.success(),
        "fit must match the theorems: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("every measured curve matches its theorem"),
        "{stdout}"
    );
    assert!(stdout.contains("exact-n(n-1)"), "{stdout}");

    // Nothing in the DEFAULT_GRID constant drifted under this test's nose:
    // the committed baseline and CI use it.
    assert_eq!(DEFAULT_GRID.len(), 5);
}
