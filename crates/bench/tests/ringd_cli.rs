//! End-to-end test of the `ringd` job server binary: a small batch over
//! stdin produces one result line per job, a `"done"` summary, per-job
//! flight recordings that the `tracer` CLI replays (critical path
//! included), and a nonzero exit when a job fails.

use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

use anonring_bench::json::Value;
use anonring_sim::telemetry::{CausalDag, PathWeight, Recording};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn ringd(args: &[&str], batch: &str) -> Output {
    use std::io::Write;
    let mut child = Command::new(env!("CARGO_BIN_EXE_ringd"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ringd");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(batch.as_bytes())
        .expect("write batch");
    child.wait_with_output().expect("ringd exits")
}

#[test]
fn a_batch_streams_certified_results_and_replayable_recordings() {
    let dir = scratch_dir("ringd-batch");
    let batch = concat!(
        r#"{"id":"and","algorithm":"sync_and","n":4,"inputs":[1,1,1,1]}"#,
        "\n",
        r#"{"id":"dist","algorithm":"async_input_dist","n":5,"seed":7,"transport":"tcp"}"#,
        "\n",
        r#"{"id":"orient","algorithm":"orientation","n":4}"#,
        "\n"
    );
    let out = ringd(
        &[
            "--workers",
            "2",
            "--record-dir",
            dir.to_str().expect("utf8 path"),
        ],
        batch,
    );
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let lines: Vec<Value> = stdout
        .lines()
        .map(|l| Value::parse(l).unwrap_or_else(|e| panic!("bad line {l:?}: {e}")))
        .collect();
    assert_eq!(lines.len(), 4, "{stdout}");
    let done = lines.last().expect("summary line");
    assert_eq!(done.get("type").and_then(Value::as_str), Some("done"));
    assert_eq!(done.get("ok").and_then(Value::as_u64), Some(3));
    assert_eq!(done.get("failed").and_then(Value::as_u64), Some(0));
    for line in &lines[..3] {
        assert_eq!(line.get("type").and_then(Value::as_str), Some("result"));
        assert_eq!(
            line.get("conformance").and_then(Value::as_str),
            Some("certified")
        );
    }

    // Every job left a v2 recording that parses (causal check included),
    // carries the net engine stamp, and yields a critical path.
    for id in ["and", "dist", "orient"] {
        let path = dir.join(format!("{id}.jsonl"));
        let jsonl =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let rec = Recording::parse_jsonl(&jsonl).unwrap_or_else(|e| panic!("{id}: {e}"));
        assert_eq!(rec.engine, "net", "{id}");
        let dag = CausalDag::from_recording(&rec).unwrap_or_else(|e| panic!("{id}: {e}"));
        assert!(dag.critical_path(PathWeight::Hops).is_some(), "{id}");

        // The tracer CLI consumes the wire recording unchanged.
        let tracer = Command::new(env!("CARGO_BIN_EXE_tracer"))
            .args([
                path.to_str().expect("utf8 path"),
                "summary",
                "critical-path",
            ])
            .output()
            .expect("spawn tracer");
        assert!(tracer.status.success(), "{id}");
        let text = String::from_utf8(tracer.stdout).expect("utf8");
        assert!(text.contains("engine:     net"), "{id}: {text}");
        assert!(text.contains("critical path"), "{id}: {text}");
        // Net recordings carry wall stamps, so the summary includes the
        // per-phase send->deliver latency table.
        assert!(text.contains("wall latency"), "{id}: {text}");
        assert!(
            text.contains("| phase | deliveries | p50 | p95 | p99 | p999 | max |"),
            "{id}: {text}"
        );
    }
}

#[test]
fn failed_jobs_surface_on_stdout_and_in_the_exit_code() {
    let batch = concat!(
        r#"{"id":"bad","algorithm":"no_such_algorithm","n":3}"#,
        "\n",
        r#"{"id":"good","algorithm":"start_sync","n":3}"#,
        "\n"
    );
    let out = ringd(&["--workers", "1"], batch);
    assert!(!out.status.success(), "a failed job must fail the batch");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("\"type\":\"error\""), "{stdout}");
    assert!(stdout.contains("unknown algorithm"), "{stdout}");
    assert!(stdout.contains("\"id\":\"good\""), "{stdout}");
    assert!(stdout.contains("\"failed\":1"), "{stdout}");
}

#[test]
fn malformed_and_oversized_lines_error_without_killing_the_stream() {
    let huge = format!(r#"{{"id":"huge","pad":"{}"}}"#, "x".repeat(2048));
    let batch = format!(
        "{}\n{}\n{}\n",
        "this is not json", huge, r#"{"id":"good","algorithm":"sync_and","n":3,"inputs":[1,1,1]}"#,
    );
    let out = ringd(&["--workers", "1", "--max-line-bytes", "1024"], &batch);
    assert!(!out.status.success(), "errored lines must fail the batch");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let lines: Vec<Value> = stdout
        .lines()
        .map(|l| Value::parse(l).unwrap_or_else(|e| panic!("bad line {l:?}: {e}")))
        .collect();
    assert_eq!(lines.len(), 4, "{stdout}");
    // Malformed json and the oversized line each produce a structured
    // error naming the cause...
    assert!(stdout.contains("\"type\":\"error\""), "{stdout}");
    assert!(stdout.contains("exceeds the 1024-byte limit"), "{stdout}");
    // ...and the stream continues: the well-formed job still certifies.
    assert!(stdout.contains("\"id\":\"good\""), "{stdout}");
    assert!(stdout.contains("\"conformance\":\"certified\""), "{stdout}");
    let done = lines.last().expect("summary line");
    assert_eq!(done.get("type").and_then(Value::as_str), Some("done"));
    assert_eq!(done.get("ok").and_then(Value::as_u64), Some(1));
    assert_eq!(done.get("failed").and_then(Value::as_u64), Some(2));
}

#[test]
fn metrics_requests_are_answered_inline_in_both_formats() {
    let batch = concat!(
        r#"{"id":"one","algorithm":"sync_and","n":3,"inputs":[1,0,1]}"#,
        "\n",
        r#"{"type":"metrics"}"#,
        "\n",
        r#"{"type":"metrics","format":"prometheus"}"#,
        "\n"
    );
    let out = ringd(&["--workers", "1"], batch);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let metrics: Vec<Value> = stdout
        .lines()
        .map(|l| Value::parse(l).unwrap_or_else(|e| panic!("bad line {l:?}: {e}")))
        .filter(|v| v.get("type").and_then(Value::as_str) == Some("metrics"))
        .collect();
    assert_eq!(metrics.len(), 2, "{stdout}");

    // JSON form: the full registry snapshot rides in "snapshot".
    let snapshot = metrics[0].get("snapshot").expect("snapshot payload");
    let counters = snapshot
        .get("counters")
        .and_then(Value::as_array)
        .expect("counters array");
    assert!(
        counters.iter().any(|c| {
            c.get("name").and_then(Value::as_str) == Some("ringd_jobs_accepted_total")
        }),
        "{stdout}"
    );

    // The scrape counter sees its own request: the first answer reports 1.
    assert!(
        counters.iter().any(|c| {
            c.get("name").and_then(Value::as_str) == Some("ringd_metrics_scrapes_total")
                && c.get("value").and_then(Value::as_u64) == Some(1)
        }),
        "{stdout}"
    );
    // The S26 profiler series ride the same snapshot — present (if
    // zero-valued) whether or not `--profile` is on.
    let histograms = snapshot
        .get("histograms")
        .and_then(Value::as_array)
        .expect("histograms array");
    for name in ["hub_lock_wait_us", "hub_lock_hold_us", "queue_dwell_us"] {
        assert!(
            histograms
                .iter()
                .any(|h| h.get("name").and_then(Value::as_str) == Some(name)),
            "missing {name:?} in:\n{stdout}"
        );
    }

    // Prometheus form: the exposition text is a JSON-escaped body.
    let body = metrics[1]
        .get("body")
        .and_then(Value::as_str)
        .expect("prometheus body");
    // Only admission-path series are asserted: the request is answered
    // inline by the reader, so whether the job has finished (and its
    // latency histograms exist) is a worker-timing race.
    for needle in [
        "# TYPE ringd_jobs_accepted_total counter",
        "# TYPE ringd_queue_depth gauge",
        "# TYPE ringd_uptime_seconds gauge",
        "# TYPE ringd_metrics_scrapes_total counter",
        "# TYPE hub_lock_wait_us histogram",
        "# TYPE hub_lock_hold_us histogram",
        "# TYPE hub_lock_section_us histogram",
        "# TYPE queue_dwell_us histogram",
        "# TYPE hub_lock_contention_total counter",
        "# TYPE profile_enabled gauge",
        "ringd_jobs_accepted_total 1",
        "ringd_metrics_scrapes_total 2",
        "hub_lock_wait_us_bucket{op=\"send\",le=\"+Inf\"}",
        "queue_dwell_us_bucket{queue=\"inbox\",port=\"3+\",le=\"+Inf\"}",
    ] {
        assert!(body.contains(needle), "missing {needle:?} in:\n{body}");
    }
}

#[test]
fn unknown_flags_exit_with_usage() {
    let out = ringd(&["--bogus"], "");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("usage"), "{stderr}");
}
