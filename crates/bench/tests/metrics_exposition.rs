//! Round-trip coverage for the two metrics wire formats (ISSUE 9,
//! satellite 3): the Prometheus text exposition and the JSON snapshot
//! must expose the same series, `# TYPE` lines must appear once per
//! metric name regardless of label-set fan-out, and label values must
//! survive escaping.

use std::collections::HashSet;

use anonring_bench::json::Value;
use anonring_bench::ringd::ServingMetrics;
use anonring_sim::telemetry::{MetricId, MetricsRegistry};

/// A registry with every metric kind and multi-label-set names, merged
/// with the S26 profiler snapshot so the stable scrape surface is part
/// of the round-trip.
fn sample_registry() -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    reg.add_counter(
        MetricId::with_labels("jobs_total", &[("algorithm", "leader")]),
        3,
    );
    reg.add_counter(
        MetricId::with_labels("jobs_total", &[("algorithm", "xor")]),
        4,
    );
    reg.set_gauge(MetricId::plain("queue_depth"), 7);
    for v in [1, 2, 300, 70_000] {
        reg.observe(
            MetricId::with_labels("latency_us", &[("phase", "probe")]),
            v,
        );
    }
    reg.observe(MetricId::with_labels("latency_us", &[("phase", "echo")]), 9);
    reg.merge(&anonring_sim::profile::snapshot());
    reg
}

/// Metric names announced by `# TYPE` lines in the text exposition.
fn type_lines(text: &str) -> Vec<(String, String)> {
    text.lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .map(|rest| {
            let mut it = rest.split_whitespace();
            (
                it.next().expect("name").to_string(),
                it.next().expect("kind").to_string(),
            )
        })
        .collect()
}

/// Metric names in one section (`counters`/`gauges`/`histograms`) of
/// the JSON snapshot.
fn json_names(snapshot: &Value, section: &str) -> Vec<String> {
    snapshot
        .get(section)
        .and_then(Value::as_array)
        .unwrap_or_else(|| panic!("{section} array"))
        .iter()
        .map(|m| {
            m.get("name")
                .and_then(Value::as_str)
                .expect("metric name")
                .to_string()
        })
        .collect()
}

#[test]
fn type_lines_appear_once_per_name_across_label_sets() {
    let text = sample_registry().to_prometheus();
    let types = type_lines(&text);
    // `jobs_total` and `latency_us` each carry two label sets but must
    // be announced exactly once.
    for (name, kind) in [
        ("jobs_total", "counter"),
        ("queue_depth", "gauge"),
        ("latency_us", "histogram"),
        ("hub_lock_wait_us", "histogram"),
        ("queue_dwell_us", "histogram"),
    ] {
        let hits: Vec<_> = types.iter().filter(|(n, _)| n == name).collect();
        assert_eq!(
            hits.len(),
            1,
            "{name} announced {} times:\n{text}",
            hits.len()
        );
        assert_eq!(hits[0].1, kind, "{name} kind:\n{text}");
    }
    // Both label sets sample under the single announcement.
    assert!(
        text.contains("jobs_total{algorithm=\"leader\"} 3"),
        "{text}"
    );
    assert!(text.contains("jobs_total{algorithm=\"xor\"} 4"), "{text}");
}

#[test]
fn label_values_are_escaped_in_the_text_exposition() {
    let mut reg = MetricsRegistry::new();
    reg.inc_counter(MetricId::with_labels(
        "odd_labels_total",
        &[
            ("path", "a\\b"),
            ("quote", "say \"hi\""),
            ("nl", "two\nlines"),
        ],
    ));
    let text = reg.to_prometheus();
    assert!(
        text.contains(
            "odd_labels_total{path=\"a\\\\b\",quote=\"say \\\"hi\\\"\",nl=\"two\\nlines\"} 1"
        ),
        "{text}"
    );
    // The escaped newline keeps the exposition one sample per line.
    assert_eq!(
        text.lines()
            .filter(|l| l.starts_with("odd_labels_total"))
            .count(),
        1,
        "{text}"
    );
}

#[test]
fn json_and_text_expositions_cover_the_same_series() {
    let reg = sample_registry();
    let text = reg.to_prometheus();
    let snapshot = Value::parse(&reg.to_json()).expect("registry JSON parses");

    // Every JSON series name is announced in the text format with the
    // matching kind, and vice versa.
    let types = type_lines(&text);
    for (section, kind) in [
        ("counters", "counter"),
        ("gauges", "gauge"),
        ("histograms", "histogram"),
    ] {
        let names = json_names(&snapshot, section);
        assert!(!names.is_empty(), "{section} empty");
        for name in &names {
            assert!(
                types.iter().any(|(n, k)| n == name && k == kind),
                "JSON {section} series {name:?} missing from text exposition:\n{text}"
            );
        }
        for (name, k) in types.iter().filter(|(_, k)| k == kind) {
            let _ = k;
            assert!(
                names.iter().any(|n| n == name),
                "text series {name:?} missing from JSON {section}"
            );
        }
    }

    // Histogram sample lines agree with the JSON counts: cumulative
    // `_bucket` lines are monotone and the `+Inf` bucket equals `_count`.
    let histograms = snapshot
        .get("histograms")
        .and_then(Value::as_array)
        .expect("histograms array");
    let latency = histograms
        .iter()
        .find(|h| {
            h.get("name").and_then(Value::as_str) == Some("latency_us")
                && h.get("labels")
                    .and_then(|l| l.get("phase"))
                    .and_then(Value::as_str)
                    == Some("probe")
        })
        .expect("latency_us{phase=probe} in JSON");
    let count = latency.get("count").and_then(Value::as_u64).expect("count");
    assert_eq!(count, 4);
    let mut last = 0u64;
    let mut inf = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("latency_us_bucket{phase=\"probe\",le=\"") {
            let (le, sample) = rest.split_once("\"} ").expect("bucket sample");
            let cumulative: u64 = sample.parse().expect("bucket count");
            assert!(cumulative >= last, "non-monotone buckets:\n{text}");
            last = cumulative;
            if le == "+Inf" {
                inf = Some(cumulative);
            }
        }
    }
    assert_eq!(inf, Some(count), "+Inf bucket must equal _count:\n{text}");
    assert!(
        text.contains(&format!("latency_us_count{{phase=\"probe\"}} {count}")),
        "{text}"
    );
}

/// Cluster-stamped registries (S27): the shard-identity gauges appear
/// and every series carries the `shard` label, so the expositions of two
/// shards of one cluster never collide on a Prometheus series.
#[test]
fn cluster_scrapes_are_shard_labelled_and_collision_free() {
    let shard0 = ServingMetrics::new(2).with_cluster(0, 3);
    let shard2 = ServingMetrics::new(2).with_cluster(2, 3);

    let snap0 = shard0.snapshot();
    assert_eq!(
        snap0.gauge(&MetricId::with_labels("ringd_shard_id", &[("shard", "0")])),
        Some(0),
        "shard-id gauge, shard-labelled like everything else"
    );
    assert_eq!(
        snap0.gauge(&MetricId::with_labels(
            "ringd_cluster_size",
            &[("shard", "0")]
        )),
        Some(3)
    );
    for (id, _) in snap0.counters() {
        assert!(
            id.labels.iter().any(|(k, v)| *k == "shard" && v == "0"),
            "unlabelled counter {id} in a cluster scrape"
        );
    }

    // Sample lines (name + label set) from the two shards are disjoint:
    // a single Prometheus can scrape both with no series collisions.
    let series = |reg: &MetricsRegistry| -> HashSet<String> {
        reg.to_prometheus()
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .filter_map(|l| {
                let cut = l.rfind(' ')?;
                Some(l[..cut].to_string())
            })
            .collect()
    };
    let (a, b) = (series(&snap0), series(&shard2.snapshot()));
    assert!(!a.is_empty() && !b.is_empty());
    let collisions: Vec<_> = a.intersection(&b).collect();
    assert!(collisions.is_empty(), "colliding series: {collisions:?}");

    // Un-clustered registries are unchanged: no shard gauges, no labels.
    let plain = ServingMetrics::new(2).snapshot();
    assert_eq!(plain.gauge(&MetricId::plain("ringd_shard_id")), None);
    assert!(plain
        .gauges()
        .all(|(id, _)| id.labels.iter().all(|(k, _)| *k != "shard")));
}
