//! End-to-end test of the cluster toolchain binaries (S27): `ringctl`
//! launches a 3-shard loopback cluster of `ringd --cluster`
//! subprocesses, certifies the merged run, and leaves artifacts that
//! `tracer merge` reproduces byte for byte and `tracer summary` replays.

use std::path::PathBuf;
use std::process::{Command, Output};

use anonring_bench::json::Value;
use anonring_sim::telemetry::Recording;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run(binary: &str, args: &[&str]) -> Output {
    Command::new(binary)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("spawn {binary}: {e}"))
}

#[test]
fn ringctl_runs_and_certifies_a_three_shard_cluster() {
    let dir = scratch_dir("ringctl-cluster");
    let out = run(
        env!("CARGO_BIN_EXE_ringctl"),
        &[
            "--algorithm",
            "sync_and",
            "--n",
            "6",
            "--shards",
            "3",
            "--dir",
            dir.to_str().expect("utf8 path"),
            "--ringd",
            env!("CARGO_BIN_EXE_ringd"),
        ],
    );
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    let summary = Value::parse(stdout.trim()).expect("summary line parses");
    assert_eq!(summary.get("type").and_then(Value::as_str), Some("cluster"));
    assert_eq!(
        summary.get("verdict").and_then(Value::as_str),
        Some("certified")
    );
    assert_eq!(summary.get("shards").and_then(Value::as_u64), Some(3));

    // The artifacts: manifest, three shard recordings, the merged one.
    for name in [
        "manifest.json",
        "shard-0.jsonl",
        "shard-1.jsonl",
        "shard-2.jsonl",
        "merged.jsonl",
    ] {
        assert!(dir.join(name).exists(), "{name} missing");
    }
    let merged = std::fs::read_to_string(dir.join("merged.jsonl")).expect("read merged recording");
    let recording = Recording::parse_jsonl(&merged).expect("merged recording parses");
    assert_eq!(recording.n, 6);
    assert!(recording.shard.is_none(), "merged recording is canonical");

    // `tracer merge` over the same shard files reproduces ringctl's
    // merge byte for byte.
    let remerged = dir.join("remerged.jsonl");
    let out = run(
        env!("CARGO_BIN_EXE_tracer"),
        &[
            "merge",
            "--out",
            remerged.to_str().expect("utf8 path"),
            dir.join("shard-0.jsonl").to_str().expect("utf8"),
            dir.join("shard-1.jsonl").to_str().expect("utf8"),
            dir.join("shard-2.jsonl").to_str().expect("utf8"),
        ],
    );
    assert!(
        out.status.success(),
        "tracer merge: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read_to_string(&remerged).expect("read remerge"),
        merged,
        "tracer merge and ringctl disagree"
    );

    // The merged recording replays through the tracer's causal sections.
    let out = run(
        env!("CARGO_BIN_EXE_tracer"),
        &[
            dir.join("merged.jsonl").to_str().expect("utf8"),
            "summary",
            "critical-path",
        ],
    );
    assert!(
        out.status.success(),
        "tracer summary: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn tracer_merge_names_a_missing_shard() {
    let dir = scratch_dir("ringctl-missing-shard");
    let out = run(
        env!("CARGO_BIN_EXE_ringctl"),
        &[
            "--algorithm",
            "start_sync",
            "--n",
            "4",
            "--shards",
            "2",
            "--dir",
            dir.to_str().expect("utf8 path"),
            "--ringd",
            env!("CARGO_BIN_EXE_ringd"),
        ],
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = run(
        env!("CARGO_BIN_EXE_tracer"),
        &["merge", dir.join("shard-1.jsonl").to_str().expect("utf8")],
    );
    assert!(!out.status.success(), "an incomplete merge must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("shard 0") && stderr.contains("missing"),
        "verdict names the absent shard: {stderr}"
    );
}

#[test]
fn ringd_cluster_mode_rejects_a_bad_shard_id() {
    let dir = scratch_dir("ringd-bad-shard");
    // Any syntactically valid manifest will do; shard 7 is not in it.
    let manifest = dir.join("manifest.json");
    std::fs::write(
        &manifest,
        r#"{"version":1,"label":"x","algorithm":"sync_and","n":4,"inputs":[1,1,1,1],"seed":0,"capacity":4,"max_delay_us":0,"timeout_ms":1000,"shards":[{"id":0,"addr":"127.0.0.1:1","start":0,"count":2},{"id":1,"addr":"127.0.0.1:2","start":2,"count":2}]}"#,
    )
    .expect("write manifest");
    let out = run(
        env!("CARGO_BIN_EXE_ringd"),
        &[
            "--cluster",
            manifest.to_str().expect("utf8"),
            "--shard",
            "7",
        ],
    );
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("shard 7"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
