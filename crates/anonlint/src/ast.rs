//! A lightweight Rust AST — just the structure the dataflow lints need.
//!
//! The [`crate::parser`] produces this tree from the [`crate::lexer`]
//! token stream. It is deliberately *lossy*: operators are not
//! distinguished, types are kept as flat identifier lists, and anything
//! the parser does not understand collapses into [`Expr::Opaque`]. What
//! it must preserve is the shape the analyses read:
//!
//! * item nesting (functions inside `impl`/`mod`/`trait` blocks, with
//!   trait-impl headers kept so `impl … Topology for …` exemptions work);
//! * statement order and block structure (for path-sensitive span and
//!   lock-region analysis);
//! * expression structure: calls, method calls, field accesses,
//!   assignments, branches and closures (for taint propagation);
//! * the *bound names* of patterns (taint flows through `let`
//!   destructuring), not the patterns themselves.

/// A parsed source file: its top-level items.
#[derive(Debug, Clone, Default)]
pub struct File {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// One item. Non-function items the lints do not look inside collapse to
/// [`Item::Other`].
#[derive(Debug, Clone)]
pub enum Item {
    /// A free or associated function with its body.
    Fn(FnItem),
    /// An `impl` block (inherent or trait) with its associated items.
    Impl(ImplItem),
    /// A `trait` block (kept for default method bodies).
    Trait(TraitItem),
    /// An inline `mod name { … }`.
    Mod(ModItem),
    /// Anything else (`use`, `struct`, `enum`, `const`, …).
    Other {
        /// 1-based source line of the item's first token.
        line: usize,
    },
}

/// A function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Parameters, in order (`self` receivers appear with name `self`).
    pub params: Vec<Param>,
    /// The body; `None` for trait-method signatures.
    pub body: Option<Block>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
}

/// One function (or closure) parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// The names the parameter pattern binds (one for a plain parameter,
    /// several for a destructuring pattern, empty for `_`).
    pub names: Vec<String>,
    /// The identifier tokens of the declared type, in order, with all
    /// punctuation dropped (`&mut Vec<PortId>` becomes `["Vec",
    /// "PortId"]`; `mut`/`dyn`/`impl` and lifetimes are skipped). Empty
    /// when no annotation was given (closure parameters).
    pub ty: Vec<String>,
    /// 1-based line the parameter starts on.
    pub line: usize,
}

/// An `impl` block.
#[derive(Debug, Clone)]
pub struct ImplItem {
    /// The trait being implemented, when this is a trait impl
    /// (identifier tokens of the trait path's last segment).
    pub trait_name: Option<String>,
    /// Associated items (functions, consts, …).
    pub items: Vec<Item>,
    /// 1-based line of the `impl` keyword.
    pub line: usize,
}

/// A `trait` block (default method bodies are analyzed like any fn).
#[derive(Debug, Clone)]
pub struct TraitItem {
    /// The trait's name.
    pub name: String,
    /// Associated items.
    pub items: Vec<Item>,
    /// 1-based line of the `trait` keyword.
    pub line: usize,
}

/// An inline module.
#[derive(Debug, Clone)]
pub struct ModItem {
    /// The module's name.
    pub name: String,
    /// Its items.
    pub items: Vec<Item>,
    /// 1-based line of the `mod` keyword.
    pub line: usize,
}

/// A `{ … }` block: statements in order. A trailing expression without
/// `;` is the last [`Stmt::Expr`].
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// The block's statements.
    pub stmts: Vec<Stmt>,
    /// 1-based line of the opening brace.
    pub line: usize,
}

/// One statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `let pat (= init)? (else { … })?;`
    Let {
        /// Names the pattern binds.
        bound: Vec<String>,
        /// The initializer, if any.
        init: Option<Expr>,
        /// The `let … else` diverging block, if any.
        else_block: Option<Block>,
        /// 1-based line of the `let`.
        line: usize,
    },
    /// An expression statement (with or without a trailing `;`).
    Expr(Expr),
    /// A nested item (fn/struct/use inside a block).
    Item(Box<Item>),
}

/// A match arm.
#[derive(Debug, Clone)]
pub struct Arm {
    /// Names the arm's pattern binds.
    pub bound: Vec<String>,
    /// The `if` guard, when present.
    pub guard: Option<Expr>,
    /// The arm's body expression.
    pub body: Expr,
    /// 1-based line the arm starts on.
    pub line: usize,
}

/// One expression. Lossy (operators and literal values are dropped) but
/// structure-preserving.
#[derive(Debug, Clone)]
pub enum Expr {
    /// A (possibly `::`-qualified) path: `x`, `self`, `Port::Left`.
    Path {
        /// The path's identifier segments.
        segs: Vec<String>,
        /// 1-based line.
        line: usize,
    },
    /// Any literal (number, string, char, bool is a Path).
    Lit {
        /// 1-based line.
        line: usize,
    },
    /// `callee(args…)`.
    Call {
        /// The callee (usually a [`Expr::Path`]).
        callee: Box<Expr>,
        /// Argument expressions.
        args: Vec<Expr>,
        /// 1-based line of the call.
        line: usize,
    },
    /// `recv.method(args…)`.
    MethodCall {
        /// The receiver.
        recv: Box<Expr>,
        /// The method name.
        method: String,
        /// Argument expressions.
        args: Vec<Expr>,
        /// 1-based line of the method name.
        line: usize,
    },
    /// `base.field` (tuple indices appear as their digits).
    Field {
        /// The base expression.
        base: Box<Expr>,
        /// The field name.
        name: String,
        /// 1-based line.
        line: usize,
    },
    /// `base[index]`.
    Index {
        /// The indexed expression.
        base: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
        /// 1-based line.
        line: usize,
    },
    /// A prefix operator: `&e` / `&mut e` (`'&'`), `*e`, `!e`, `-e`.
    Unary {
        /// Which operator (`'&'`, `'*'`, `'!'`, `'-'`).
        op: char,
        /// The operand.
        expr: Box<Expr>,
        /// 1-based line.
        line: usize,
    },
    /// Any binary operator chain node (`a + b`, `a == b`, `a .. b`, …).
    Binary {
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// 1-based line of the operator.
        line: usize,
    },
    /// `lhs = rhs` and compound assignments (`+=`, …).
    Assign {
        /// The assignment target.
        lhs: Box<Expr>,
        /// The assigned value.
        rhs: Box<Expr>,
        /// Whether this is a compound assignment (`+=`, `|=`, …), which
        /// reads the target as well as writing it.
        compound: bool,
        /// 1-based line of the operator.
        line: usize,
    },
    /// `if cond { … } (else …)?`, including `if let`.
    If {
        /// The condition (the scrutinee, for `if let`).
        cond: Box<Expr>,
        /// Names bound by an `if let` pattern (empty otherwise).
        bound: Vec<String>,
        /// The then-block.
        then: Block,
        /// The else branch: a [`Expr::Block`] or another [`Expr::If`].
        els: Option<Box<Expr>>,
        /// 1-based line of the `if`.
        line: usize,
    },
    /// `match scrutinee { arms… }`.
    Match {
        /// The scrutinee.
        scrutinee: Box<Expr>,
        /// The arms, in order.
        arms: Vec<Arm>,
        /// 1-based line of the `match`.
        line: usize,
    },
    /// `while cond { … }`, including `while let`.
    While {
        /// The condition (scrutinee for `while let`).
        cond: Box<Expr>,
        /// Names bound by a `while let` pattern.
        bound: Vec<String>,
        /// The loop body.
        body: Block,
        /// 1-based line.
        line: usize,
    },
    /// `loop { … }`.
    Loop {
        /// The loop body.
        body: Block,
        /// 1-based line.
        line: usize,
    },
    /// `for pat in iter { … }`.
    For {
        /// Names the loop pattern binds.
        bound: Vec<String>,
        /// The iterated expression.
        iter: Box<Expr>,
        /// The loop body.
        body: Block,
        /// 1-based line.
        line: usize,
    },
    /// A closure `|params| body` (`move` is dropped).
    Closure {
        /// The closure's parameters.
        params: Vec<Param>,
        /// Its body expression.
        body: Box<Expr>,
        /// 1-based line.
        line: usize,
    },
    /// A block expression (also `unsafe { … }`).
    Block(Block),
    /// `return (e)?`.
    Return {
        /// The returned value, if any.
        value: Option<Box<Expr>>,
        /// 1-based line.
        line: usize,
    },
    /// `break (e)?` / `continue`.
    Jump {
        /// The `break` value, if any.
        value: Option<Box<Expr>>,
        /// 1-based line.
        line: usize,
    },
    /// A struct literal `Path { field: e, … }`.
    Struct {
        /// The struct path's identifier segments.
        path: Vec<String>,
        /// `(field name, value)` pairs (shorthand fields get a
        /// [`Expr::Path`] value); the `..base` tail is a field named
        /// `..`.
        fields: Vec<(String, Expr)>,
        /// 1-based line.
        line: usize,
    },
    /// A tuple or array literal (and parenthesized expressions).
    Tuple {
        /// The element expressions.
        items: Vec<Expr>,
        /// 1-based line.
        line: usize,
    },
    /// A macro invocation `name!(…)`. Arguments that parse as
    /// comma-separated expressions are kept; otherwise the raw
    /// identifiers inside are preserved for conservative scanning.
    Macro {
        /// The macro's name (last path segment, no `!`).
        name: String,
        /// Parsed argument expressions (empty if the body did not parse).
        args: Vec<Expr>,
        /// Fallback: identifiers appearing in an unparsed body.
        raw_idents: Vec<String>,
        /// 1-based line.
        line: usize,
    },
    /// `expr?`.
    Try {
        /// The inner expression.
        expr: Box<Expr>,
        /// 1-based line of the `?`.
        line: usize,
    },
    /// Tokens the parser could not shape; analyses treat it as an
    /// untainted, effect-free leaf (a documented soundness gap).
    Opaque {
        /// 1-based line.
        line: usize,
    },
}

impl Expr {
    /// The 1-based source line of the expression's head token.
    #[must_use]
    pub fn line(&self) -> usize {
        match self {
            Expr::Path { line, .. }
            | Expr::Lit { line }
            | Expr::Call { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::Field { line, .. }
            | Expr::Index { line, .. }
            | Expr::Unary { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Assign { line, .. }
            | Expr::If { line, .. }
            | Expr::Match { line, .. }
            | Expr::While { line, .. }
            | Expr::Loop { line, .. }
            | Expr::For { line, .. }
            | Expr::Closure { line, .. }
            | Expr::Return { line, .. }
            | Expr::Jump { line, .. }
            | Expr::Struct { line, .. }
            | Expr::Tuple { line, .. }
            | Expr::Macro { line, .. }
            | Expr::Try { line, .. }
            | Expr::Opaque { line } => *line,
            Expr::Block(b) => b.line,
        }
    }

    /// Whether this is a path consisting of exactly `segs`.
    #[must_use]
    pub fn is_path(&self, want: &[&str]) -> bool {
        matches!(self, Expr::Path { segs, .. } if segs.len() == want.len()
            && segs.iter().zip(want).all(|(a, b)| a == b))
    }
}

/// Depth-first walk over every item in a file, calling `f` on each
/// function (with the enclosing impl's trait name, if any).
pub fn for_each_fn<'a>(file: &'a File, f: &mut impl FnMut(&'a FnItem, Option<&'a str>)) {
    fn rec<'a>(
        items: &'a [Item],
        trait_ctx: Option<&'a str>,
        f: &mut impl FnMut(&'a FnItem, Option<&'a str>),
    ) {
        for item in items {
            match item {
                Item::Fn(func) => f(func, trait_ctx),
                Item::Impl(i) => rec(&i.items, i.trait_name.as_deref(), f),
                Item::Trait(t) => rec(&t.items, None, f),
                Item::Mod(m) => rec(&m.items, None, f),
                Item::Other { .. } => {}
            }
        }
    }
    rec(&file.items, None, f);
}
