//! # anonring-anonlint
//!
//! A source-level lint pass enforcing the *anonymity model* of the paper
//! mechanically. The paper's results hold only for identical deterministic
//! processors whose every cost flows through the metered send path; nothing
//! in the type system stops an algorithm from branching on a processor
//! index or bypassing the meter. This crate walks the workspace source with
//! a small hand-rolled lexer ([`lexer`]) and reports violations as named
//! findings. On top of the token pass, a total recursive-descent parser
//! ([`parser`] → [`ast`]) feeds three intraprocedural dataflow analyses
//! ([`dataflow`]): identity-taint, span-dominance, and the hub's
//! critical-section discipline.
//!
//! ## Lint catalog
//!
//! | lint | scope | invariant |
//! |---|---|---|
//! | `anonymity-breach` | `core/src/algorithms`, `net/src` | algorithm and transport-driver code must not read the processor index (the `from_config` index parameter stays unbound) or introspect wiring through the topology API (`neighbor_port`, digests, schedules); `impl … Topology for …` blocks are exempt — a topology *definition* realises wiring, it does not spy on it |
//! | `identity-taint` | `core/src/algorithms` | dataflow tier of the anonymity rule: no value derived from a processor index, a `PortId`, or a wiring accessor may flow into a send payload or a branch condition, even through local variables the denylist cannot see |
//! | `unmetered-send` | `core/src/algorithms`, `sim/src`, `net/src` | all sends route through `Emit`; raw fabric/queue access and `CostMeter::record_send` are reserved to `sim::runtime` (and, net-side, the hub) |
//! | `span-coverage` | `core/src/algorithms` | every algorithm that sends stamps at least one telemetry `Span` |
//! | `span-dominance` | `core/src/algorithms` | dataflow tier of span coverage: every *send site* is chained under `in_span`, preceded by a span establishment on all paths, or followed by one on some path through its function |
//! | `no-unwrap-in-runtime` | `sim/src`, `net/src` | runtime code uses `expect` with an invariant message, never bare `unwrap` |
//! | `lock-discipline` | `net/src/hub*`, `sim/src/profile*` | the S21 invariant: every meter write, causal stamp and trace append in the hub happens inside one lock-guard region per function; the S26 profiler module is held to the same rule so its probes can never grow an unguarded meter write |
//! | `forbid-unsafe` | all | no `unsafe` token anywhere; crate roots carry `#![forbid(unsafe_code)]` |
//! | `malformed-suppression` | all | every `anonlint: allow(…)` names a known lint and gives a `-- reason` |
//! | `stale-suppression` | all | every suppression still suppresses something; a directive whose lint no longer fires on its lines is dead weight and is reported |
//!
//! Test code (`#[cfg(test)]` items) and comments/doc examples are excluded.
//!
//! ## Suppression syntax
//!
//! A finding is suppressed by a comment on the same line or the line
//! directly above, naming the lint and justifying itself:
//!
//! ```text
//! // anonlint: allow(no-unwrap-in-runtime) -- capacity checked two lines up
//! let head = queue.pop_front().unwrap();
//! ```
//!
//! `anonlint: allow-file(lint-name) -- reason` at any line suppresses the
//! lint for the whole file. A suppression without a reason (or naming an
//! unknown lint) is itself reported as `malformed-suppression`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ast;
pub mod dataflow;
pub mod lexer;
pub mod parser;

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use lexer::{lex, Token, TokenKind};

/// The named lints anonlint can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lint {
    /// Algorithm code reads the processor index or ring wiring directly.
    AnonymityBreach,
    /// Identity-derived data flows into a send payload or branch condition.
    IdentityTaint,
    /// A send bypasses the `Emit`/`LinkFabric` metered path.
    UnmeteredSend,
    /// An algorithm sends messages but never stamps a telemetry `Span`.
    SpanCoverage,
    /// A send site is not dominated by an `in_span` scope on every path.
    SpanDominance,
    /// Runtime code calls bare `unwrap` instead of `expect("invariant")`.
    NoUnwrapInRuntime,
    /// A hub meter/stamp/trace op runs outside the single lock-guard region.
    LockDiscipline,
    /// An `unsafe` token, or a crate root missing `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// An `anonlint:` suppression comment that does not parse.
    MalformedSuppression,
    /// A suppression whose lint no longer fires on the lines it covers.
    StaleSuppression,
}

impl Lint {
    /// All lints, in catalog order.
    pub const ALL: [Lint; 10] = [
        Lint::AnonymityBreach,
        Lint::IdentityTaint,
        Lint::UnmeteredSend,
        Lint::SpanCoverage,
        Lint::SpanDominance,
        Lint::NoUnwrapInRuntime,
        Lint::LockDiscipline,
        Lint::ForbidUnsafe,
        Lint::MalformedSuppression,
        Lint::StaleSuppression,
    ];

    /// The lint's kebab-case name, as used in suppressions and baselines.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Lint::AnonymityBreach => "anonymity-breach",
            Lint::IdentityTaint => "identity-taint",
            Lint::UnmeteredSend => "unmetered-send",
            Lint::SpanCoverage => "span-coverage",
            Lint::SpanDominance => "span-dominance",
            Lint::NoUnwrapInRuntime => "no-unwrap-in-runtime",
            Lint::LockDiscipline => "lock-discipline",
            Lint::ForbidUnsafe => "forbid-unsafe",
            Lint::MalformedSuppression => "malformed-suppression",
            Lint::StaleSuppression => "stale-suppression",
        }
    }

    /// One line on *why* the invariant matters — printed under findings so
    /// a violation explains the paper-model stake, not just the rule.
    #[must_use]
    pub fn why(self) -> &'static str {
        match self {
            Lint::AnonymityBreach => {
                "the paper's bounds assume identical anonymous processors; \
                 naming the index or wiring collapses them"
            }
            Lint::IdentityTaint => {
                "identity leaking through a local into a payload or branch \
                 breaks anonymity just as surely as naming it directly"
            }
            Lint::UnmeteredSend => {
                "every transmitted bit must cross the meter, or the measured \
                 communication complexity understates the algorithm"
            }
            Lint::SpanCoverage => {
                "un-spanned sends make per-phase cost budgets invisible in \
                 telemetry"
            }
            Lint::SpanDominance => {
                "a send reachable outside every span is charged to no phase; \
                 phase accounting must cover all paths"
            }
            Lint::NoUnwrapInRuntime => {
                "runtime panics must name the violated invariant, or field \
                 failures are undebuggable"
            }
            Lint::LockDiscipline => {
                "meter, causal stamps and trace must advance atomically (S21); \
                 split critical sections reorder the observable history"
            }
            Lint::ForbidUnsafe => {
                "the workspace proves its model properties by construction; \
                 unsafe code voids that argument"
            }
            Lint::MalformedSuppression => {
                "an unjustified or unparseable allow silently widens the \
                 trusted surface"
            }
            Lint::StaleSuppression => "a dead allow masks the next real violation at the same spot",
        }
    }

    /// Parses a lint name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Lint> {
        Lint::ALL.into_iter().find(|l| l.name() == name)
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which invariant set applies to a file (scopes differ in what the
/// sanctioned API surface is).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// `crates/core/src/algorithms/**`: paper-algorithm code, the most
    /// restricted surface.
    Algorithms,
    /// `crates/sim/src/**`: the runtime itself; `sim/src/runtime/` is the
    /// sole owner of the raw send path, and the S26 profiler module
    /// (`sim/src/profile*`) obeys the hub lock discipline.
    Runtime,
    /// `crates/net/src/**` plus the serving path in `bench`
    /// (`ringd.rs`, `load.rs`): the real-transport driver; its hub
    /// module is the sole owner of the net-side meter writes, and
    /// everything else obeys the runtime rules (plus the anonymity
    /// denylist, since the driver hosts algorithm processes directly).
    NetDriver,
}

impl Scope {
    /// The lints enforced in this scope.
    #[must_use]
    pub fn lints(self) -> &'static [Lint] {
        match self {
            Scope::Algorithms => &[
                Lint::AnonymityBreach,
                Lint::IdentityTaint,
                Lint::UnmeteredSend,
                Lint::SpanCoverage,
                Lint::SpanDominance,
                Lint::ForbidUnsafe,
            ],
            Scope::Runtime => &[
                Lint::UnmeteredSend,
                Lint::NoUnwrapInRuntime,
                Lint::LockDiscipline,
                Lint::ForbidUnsafe,
            ],
            Scope::NetDriver => &[
                Lint::AnonymityBreach,
                Lint::UnmeteredSend,
                Lint::NoUnwrapInRuntime,
                Lint::LockDiscipline,
                Lint::ForbidUnsafe,
            ],
        }
    }
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which lint fired.
    pub lint: Lint,
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line of the violation.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, trimmed (empty when unavailable).
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )?;
        if !self.snippet.is_empty() {
            write!(f, "\n    | {}", self.snippet)?;
        }
        write!(f, "\n    = why: {}", self.lint.why())
    }
}

/// Identifiers that read ring wiring or processor identity — off limits to
/// algorithm code, which must see the world only through its local ports.
/// The second row is the port-labelled topology API: `neighbor_port` and
/// the digests reveal global wiring, `active_edges`/`components` reveal
/// the global footprint, `is_active` reveals another processor's
/// schedule, and `local_schedule(i)` is ensemble construction (engines
/// hand each node *its own* schedule; a process must never pull one).
const ANONYMITY_DENYLIST: [&str; 10] = [
    "neighbor",
    "processor_index",
    "with_switched",
    "neighbor_port",
    "wiring_digest",
    "round_digest",
    "active_edges",
    "components",
    "is_active",
    "local_schedule",
];

/// Raw send-path surface reserved to `sim::runtime` — algorithm code
/// touching any of these is constructing or delivering messages outside
/// the metered `Emit` vocabulary.
const RAW_SEND_SURFACE: [&str; 5] = [
    "LinkFabric",
    "record_send",
    "pop_candidate",
    "push_back",
    "take_due",
];

/// Emission vocabulary whose presence marks a file as "this algorithm
/// sends messages" for `span-coverage`.
const SEND_VOCABULARY: [&str; 6] = [
    "send",
    "send_left",
    "send_right",
    "send_both",
    "and_send",
    "push_send",
];

/// Lints `source` (from `file`, repo-relative, under `scope`).
///
/// This is the pure core: no filesystem access, deterministic output
/// (findings in source order).
#[must_use]
pub fn lint_source(file: &str, source: &str, scope: Scope) -> Vec<Finding> {
    let tokens = lex(source);
    let in_test = test_code_mask(&tokens);
    let (suppressions, mut findings) = collect_suppressions(file, &tokens);

    let code: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(i, t)| {
            !in_test[*i] && !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
        })
        .collect();

    for lint in scope.lints() {
        match lint {
            Lint::ForbidUnsafe => check_forbid_unsafe(file, &code, &mut findings),
            Lint::NoUnwrapInRuntime => check_no_unwrap(file, &code, &mut findings),
            Lint::UnmeteredSend => check_unmetered_send(file, scope, &code, &mut findings),
            Lint::AnonymityBreach => check_anonymity_breach(file, &code, &mut findings),
            Lint::SpanCoverage => check_span_coverage(file, &code, &mut findings),
            // AST-tier analyses run below; suppression health runs last.
            Lint::IdentityTaint
            | Lint::SpanDominance
            | Lint::LockDiscipline
            | Lint::MalformedSuppression
            | Lint::StaleSuppression => {}
        }
    }

    check_ast_lints(file, scope, &tokens, &in_test, &mut findings);

    // Apply suppressions, tracking which directives earn their keep; a
    // directive that suppresses nothing is itself a finding (and, like
    // malformed-suppression, cannot be suppressed away).
    let mut used = vec![false; suppressions.directives.len()];
    findings.retain(|f| {
        let hits = suppressions.matching(f);
        for &i in &hits {
            used[i] = true;
        }
        hits.is_empty()
    });
    for (i, d) in suppressions.directives.iter().enumerate() {
        if !used[i] {
            findings.push(finding(
                Lint::StaleSuppression,
                file,
                d.line,
                format!(
                    "suppression allows `{}` but that lint does not fire on \
                     the lines it covers; remove the directive",
                    d.lint
                ),
            ));
        }
    }

    findings.sort_by_key(|f| (f.line, f.lint));
    for f in &mut findings {
        f.snippet = snippet_at(source, f.line);
    }
    findings
}

/// Parses the non-test tokens and runs whichever dataflow analyses the
/// scope enables.
fn check_ast_lints(
    file: &str,
    scope: Scope,
    tokens: &[Token],
    in_test: &[bool],
    findings: &mut Vec<Finding>,
) {
    let wants = |l: Lint| scope.lints().contains(&l);
    let lock_applies =
        wants(Lint::LockDiscipline) && (file.contains("/hub") || file.contains("/profile"));
    if !wants(Lint::IdentityTaint) && !wants(Lint::SpanDominance) && !lock_applies {
        return;
    }
    let non_test: Vec<Token> = tokens
        .iter()
        .zip(in_test)
        .filter(|(_, &masked)| !masked)
        .map(|(t, _)| t.clone())
        .collect();
    let ast = parser::parse_tokens(&non_test);

    if wants(Lint::IdentityTaint) {
        for tf in dataflow::identity_taint(&ast, &ANONYMITY_DENYLIST) {
            findings.push(finding(
                Lint::IdentityTaint,
                file,
                tf.line,
                format!(
                    "{} data from {} (line {}) flows into {}",
                    tf.tag.kind.describe(),
                    tf.tag.origin,
                    tf.tag.line,
                    tf.sink
                ),
            ));
        }
    }
    if wants(Lint::SpanDominance) {
        for sf in dataflow::span_dominance(&ast) {
            findings.push(finding(
                Lint::SpanDominance,
                file,
                sf.line,
                format!(
                    "send site `{}` in fn `{}` is not covered by a span on \
                     every path (chain `.in_span(…)` or stamp the tail value)",
                    sf.site, sf.func
                ),
            ));
        }
    }
    if lock_applies {
        for lf in dataflow::lock_discipline(&ast) {
            let message = if lf.outside {
                format!(
                    "`{}` in fn `{}` runs outside any hub lock guard",
                    lf.op, lf.func
                )
            } else {
                format!(
                    "`{}` in fn `{}` runs in a second lock region; all \
                     meter/stamp/trace ops of one fn share one critical section",
                    lf.op, lf.func
                )
            };
            findings.push(finding(Lint::LockDiscipline, file, lf.line, message));
        }
    }
}

/// The source line a finding points at, trimmed and capped.
fn snippet_at(source: &str, line: usize) -> String {
    let raw = source
        .lines()
        .nth(line.saturating_sub(1))
        .unwrap_or("")
        .trim();
    let mut out: String = raw.chars().take(120).collect();
    if raw.chars().count() > 120 {
        out.push('…');
    }
    out
}

/// Marks tokens inside `#[cfg(test)]` items (the attribute, and the item
/// it attaches to, through the matching `;` or closing brace).
fn test_code_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            let attr_end = skip_attr(tokens, i);
            let mut j = attr_end;
            // Further attributes on the same item (`#[cfg(test)] #[derive(..)]`).
            while j < tokens.len() && tokens[j].is_punct('#') {
                j = skip_attr(tokens, j);
            }
            // The item body: through the matching close of the first brace
            // block, or a top-level `;` before any brace opens.
            let mut depth = 0usize;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                } else if t.is_punct(';') && depth == 0 {
                    j += 1;
                    break;
                }
                j += 1;
            }
            for m in &mut mask[i..j.min(tokens.len())] {
                *m = true;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    mask
}

/// Whether tokens at `i` start `#[cfg(test)]` (possibly with whitespace
/// already stripped by the lexer).
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    let non_comment = |k: usize| -> Option<&Token> {
        tokens
            .get(k)
            .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
    };
    tokens.get(i).is_some_and(|t| t.is_punct('#'))
        && non_comment(i + 1).is_some_and(|t| t.is_punct('['))
        && non_comment(i + 2).is_some_and(|t| t.is_ident("cfg"))
        && non_comment(i + 3).is_some_and(|t| t.is_punct('('))
        && non_comment(i + 4).is_some_and(|t| t.is_ident("test"))
}

/// Returns the index just past the attribute starting at `i` (`#[ … ]`,
/// bracket-balanced).
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1; // past `#`
    let mut depth = 0usize;
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// One well-formed suppression directive.
struct Directive {
    /// The lint it allows.
    lint: Lint,
    /// The comment's own line; a line directive also covers the next line.
    line: usize,
    /// `allow-file(…)` covers the whole file.
    whole_file: bool,
}

/// Parsed suppression directives of one file.
struct Suppressions {
    directives: Vec<Directive>,
}

impl Suppressions {
    /// Indices of every directive that suppresses `finding`. The
    /// suppression-health lints are never themselves suppressible.
    fn matching(&self, finding: &Finding) -> Vec<usize> {
        if matches!(
            finding.lint,
            Lint::MalformedSuppression | Lint::StaleSuppression
        ) {
            return Vec::new();
        }
        self.directives
            .iter()
            .enumerate()
            .filter(|(_, d)| {
                d.lint == finding.lint
                    && (d.whole_file || finding.line == d.line || finding.line == d.line + 1)
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// Scans comment tokens for `anonlint:` directives; malformed ones become
/// findings immediately.
fn collect_suppressions(file: &str, tokens: &[Token]) -> (Suppressions, Vec<Finding>) {
    let mut sup = Suppressions {
        directives: Vec::new(),
    };
    let mut findings = Vec::new();
    for token in tokens {
        if !matches!(token.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let Some(directive) = token.text.split("anonlint:").nth(1) else {
            continue;
        };
        match parse_directive(directive.trim()) {
            Ok((lint, whole_file)) => sup.directives.push(Directive {
                lint,
                line: token.line,
                whole_file,
            }),
            Err(why) => findings.push(finding(Lint::MalformedSuppression, file, token.line, why)),
        }
    }
    (sup, findings)
}

/// Parses `allow(lint-name) -- reason` / `allow-file(lint-name) -- reason`.
/// Returns `(lint, is_whole_file)`.
fn parse_directive(directive: &str) -> Result<(Lint, bool), String> {
    let (head, reason) = directive
        .split_once("--")
        .ok_or_else(|| "suppression missing `-- reason`".to_string())?;
    if reason.trim().is_empty() {
        return Err("suppression reason is empty".to_string());
    }
    let head = head.trim();
    let (whole_file, rest) = if let Some(rest) = head.strip_prefix("allow-file(") {
        (true, rest)
    } else if let Some(rest) = head.strip_prefix("allow(") {
        (false, rest)
    } else {
        return Err(format!("expected allow(…) or allow-file(…), got {head:?}"));
    };
    let name = rest
        .strip_suffix(')')
        .ok_or_else(|| "unclosed allow(".to_string())?
        .trim();
    let lint =
        Lint::from_name(name).ok_or_else(|| format!("unknown lint {name:?} in suppression"))?;
    Ok((lint, whole_file))
}

fn finding(lint: Lint, file: &str, line: usize, message: impl Into<String>) -> Finding {
    Finding {
        lint,
        file: file.to_string(),
        line,
        message: message.into(),
        snippet: String::new(),
    }
}

fn check_forbid_unsafe(file: &str, code: &[(usize, &Token)], findings: &mut Vec<Finding>) {
    for (_, t) in code {
        if t.is_ident("unsafe") {
            findings.push(finding(
                Lint::ForbidUnsafe,
                file,
                t.line,
                "`unsafe` is forbidden in this workspace",
            ));
        }
    }
    // Crate roots must pin the guarantee declaratively too.
    if file.ends_with("lib.rs") {
        let has_forbid = code.windows(4).any(|w| {
            w[0].1.is_ident("forbid")
                && w[1].1.is_punct('(')
                && w[2].1.is_ident("unsafe_code")
                && w[3].1.is_punct(')')
        });
        if !has_forbid {
            findings.push(finding(
                Lint::ForbidUnsafe,
                file,
                1,
                "crate root missing `#![forbid(unsafe_code)]`",
            ));
        }
    }
}

fn check_no_unwrap(file: &str, code: &[(usize, &Token)], findings: &mut Vec<Finding>) {
    for (_, t) in code {
        if t.is_ident("unwrap") {
            findings.push(finding(
                Lint::NoUnwrapInRuntime,
                file,
                t.line,
                "bare `unwrap` in runtime code: use `expect(\"<invariant>\")` \
                 or suppress with a justification",
            ));
        }
    }
}

fn check_unmetered_send(
    file: &str,
    scope: Scope,
    code: &[(usize, &Token)],
    findings: &mut Vec<Finding>,
) {
    let surface: &[&str] = match scope {
        // Algorithm code must not even name the raw machinery.
        Scope::Algorithms => &RAW_SEND_SURFACE,
        // Inside sim, only the runtime module owns meter writes; the
        // engines drive `LinkFabric` (which meters internally) but must
        // never account a send themselves.
        Scope::Runtime => {
            if file.contains("/runtime/") {
                return;
            }
            &["record_send"]
        }
        // The hub is the net-side mirror of `sim::runtime`: it alone may
        // write the meter. Workers, transports and the conformance oracle
        // must route every send through it.
        Scope::NetDriver => {
            if file.contains("/hub") {
                return;
            }
            &["record_send", "LinkFabric"]
        }
    };
    for (_, t) in code {
        if surface.iter().any(|s| t.is_ident(s)) {
            findings.push(finding(
                Lint::UnmeteredSend,
                file,
                t.line,
                format!(
                    "`{}` belongs to the metered send path in sim::runtime; \
                     sends must go through `Emit`",
                    t.text
                ),
            ));
        }
    }
}

/// Marks tokens inside `impl … Topology for …` blocks. Implementing the
/// [`Topology`] trait is *defining* wiring (the sanctioned substrate
/// surface, like `sim::runtime` for the meter), so the anonymity denylist
/// does not apply there; everything outside such a block still does.
fn topology_impl_mask(code: &[(usize, &Token)]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if !code[i].1.is_ident("impl") {
            i += 1;
            continue;
        }
        // The header runs to the block's `{`; it qualifies when it names
        // the Topology trait with a `for` (a trait impl, not inherent).
        let mut j = i + 1;
        let mut names_topology = false;
        let mut has_for = false;
        while j < code.len() && !code[j].1.is_punct('{') {
            names_topology |= code[j].1.is_ident("Topology");
            has_for |= code[j].1.is_ident("for");
            j += 1;
        }
        if !(names_topology && has_for) || j == code.len() {
            i = j;
            continue;
        }
        // Mask the header and the brace-balanced body.
        let mut depth = 0usize;
        let mut k = j;
        while k < code.len() {
            if code[k].1.is_punct('{') {
                depth += 1;
            } else if code[k].1.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    k += 1;
                    break;
                }
            }
            k += 1;
        }
        for m in &mut mask[i..k] {
            *m = true;
        }
        i = k;
    }
    mask
}

fn check_anonymity_breach(file: &str, code: &[(usize, &Token)], findings: &mut Vec<Finding>) {
    let in_topology_impl = topology_impl_mask(code);
    for (k, (_, t)) in code.iter().enumerate() {
        if in_topology_impl[k] {
            continue;
        }
        if ANONYMITY_DENYLIST.iter().any(|s| t.is_ident(s)) {
            findings.push(finding(
                Lint::AnonymityBreach,
                file,
                t.line,
                format!(
                    "`{}` reads ring wiring or processor identity; algorithm \
                     code sees only its local ports",
                    t.text
                ),
            ));
        }
    }
    // The `from_config(config, |index, input| …)` construction closure: the
    // index parameter exists so engines can build per-processor state, but
    // an *anonymous* algorithm must leave it unbound (`_` / `_foo`).
    for (pos, window) in code.windows(12).enumerate() {
        if !window[0].1.is_ident("from_config") {
            continue;
        }
        let Some(bar) = window.iter().skip(1).position(|(_, t)| t.is_punct('|')) else {
            continue;
        };
        let Some((_, param)) = code.get(pos + 1 + bar + 1) else {
            continue;
        };
        if param.kind == TokenKind::Ident && !param.text.starts_with('_') {
            findings.push(finding(
                Lint::AnonymityBreach,
                file,
                param.line,
                format!(
                    "construction closure binds the processor index as `{}`; \
                     anonymous algorithms must not read it (rename to `_`)",
                    param.text
                ),
            ));
        }
    }
}

fn check_span_coverage(file: &str, code: &[(usize, &Token)], findings: &mut Vec<Finding>) {
    let mut first_send: Option<usize> = None;
    let mut has_span = false;
    for (i, (_, t)) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        if SEND_VOCABULARY.contains(&t.text.as_str()) {
            first_send.get_or_insert(t.line);
        }
        // Field-built steps (`step.to_left = Some(..)`) count as sends too.
        if (t.text == "to_left" || t.text == "to_right")
            && code.get(i + 1).is_some_and(|(_, n)| n.is_punct('='))
        {
            first_send.get_or_insert(t.line);
        }
        if t.text == "in_span" || t.text == "set_span" {
            has_span = true;
        }
    }
    if let Some(line) = first_send {
        if !has_span {
            findings.push(finding(
                Lint::SpanCoverage,
                file,
                line,
                "this algorithm sends messages but never stamps a telemetry \
                 `Span` (use `Emit::in_span`); per-phase budgets are invisible",
            ));
        }
    }
}

/// How a [`SCOPE_TABLE`] row matches repo-relative, `/`-separated paths.
/// Deliberately glob-free: a row either owns a directory subtree or names
/// one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathMatch {
    /// Every `.rs` file under this directory (the prefix must end at a
    /// path-component boundary: `crates/net/src` matches
    /// `crates/net/src/hub.rs`, not `crates/net/srcery.rs`).
    Prefix(&'static str),
    /// Exactly this file.
    File(&'static str),
}

impl PathMatch {
    /// Whether `path` (repo-relative, `/`-separated) falls under this row.
    #[must_use]
    pub fn matches(self, path: &str) -> bool {
        match self {
            PathMatch::Prefix(p) => path
                .strip_prefix(p)
                .is_some_and(|rest| rest.is_empty() || rest.starts_with('/')),
            PathMatch::File(f) => path == f,
        }
    }
}

/// One row of the scope table.
#[derive(Debug, Clone, Copy)]
pub struct ScopeEntry {
    /// Which paths the row claims.
    pub path: PathMatch,
    /// Invariant set for files under it.
    pub scope: Scope,
}

/// The lint charter as data: which invariant set governs which paths.
/// First match wins, so put narrower rows before wider ones. The two
/// `File` rows are the serving path: it lives in `bench` but drives the
/// net runtime on live jobs, so it carries the net-driver invariants.
pub const SCOPE_TABLE: &[ScopeEntry] = &[
    ScopeEntry {
        path: PathMatch::Prefix("crates/core/src/algorithms"),
        scope: Scope::Algorithms,
    },
    ScopeEntry {
        path: PathMatch::Prefix("crates/sim/src"),
        scope: Scope::Runtime,
    },
    // The S27 cluster subsystem, named explicitly ahead of the net
    // prefix row: these files realise cross-shard wiring and must carry
    // the net-driver invariants even if the prefix row is ever narrowed.
    ScopeEntry {
        path: PathMatch::File("crates/net/src/cluster.rs"),
        scope: Scope::NetDriver,
    },
    ScopeEntry {
        path: PathMatch::File("crates/net/src/manifest.rs"),
        scope: Scope::NetDriver,
    },
    ScopeEntry {
        path: PathMatch::Prefix("crates/net/src"),
        scope: Scope::NetDriver,
    },
    ScopeEntry {
        path: PathMatch::File("crates/bench/src/ringd.rs"),
        scope: Scope::NetDriver,
    },
    ScopeEntry {
        path: PathMatch::File("crates/bench/src/load.rs"),
        scope: Scope::NetDriver,
    },
    ScopeEntry {
        path: PathMatch::File("crates/bench/src/cluster.rs"),
        scope: Scope::NetDriver,
    },
];

/// The scope governing `path`, if any row of [`SCOPE_TABLE`] claims it
/// (first match wins).
#[must_use]
pub fn scope_for(path: &str) -> Option<Scope> {
    SCOPE_TABLE
        .iter()
        .find(|e| e.path.matches(path))
        .map(|e| e.scope)
}

/// Lints every `.rs` file claimed by the [`SCOPE_TABLE`] under
/// `repo_root`. Deterministic: files are visited in sorted path order.
///
/// # Errors
///
/// Propagates filesystem errors (missing roots, unreadable files).
pub fn lint_repo(repo_root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for entry in SCOPE_TABLE {
        match entry.path {
            PathMatch::Prefix(p) => collect_rs_files(&repo_root.join(p), &mut files)?,
            PathMatch::File(f) => files.push(repo_root.join(f)),
        }
    }
    files.sort();
    files.dedup();
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(repo_root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(scope) = scope_for(&rel) else {
            continue;
        };
        let source = std::fs::read_to_string(&path)?;
        findings.extend(lint_source(&rel, &source, scope));
    }
    Ok(findings)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if dir.is_file() {
        out.push(dir.to_path_buf());
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// A committed set of grandfathered findings: per `(lint, file)` counts.
/// The lint CLI fails only when a file's count for some lint *exceeds* its
/// baseline (so old debt does not block CI, but new debt does).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, String), u64>,
}

impl Baseline {
    /// An empty baseline: every finding is new.
    #[must_use]
    pub fn empty() -> Baseline {
        Baseline::default()
    }

    /// Parses the baseline format: one `lint-name<TAB>file<TAB>count` per
    /// line; `#` lines and blank lines are comments.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line.
    pub fn parse(input: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        for (idx, line) in input.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('\t');
            let (Some(lint), Some(file), Some(count)) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "baseline line {}: expected lint<TAB>file<TAB>count",
                    idx + 1
                ));
            };
            if Lint::from_name(lint).is_none() {
                return Err(format!("baseline line {}: unknown lint {lint:?}", idx + 1));
            }
            let count: u64 = count
                .parse()
                .map_err(|_| format!("baseline line {}: bad count {count:?}", idx + 1))?;
            entries.insert((lint.to_string(), file.to_string()), count);
        }
        Ok(Baseline { entries })
    }

    /// Serializes `findings` as a baseline file.
    #[must_use]
    pub fn render(findings: &[Finding]) -> String {
        let mut counts: BTreeMap<(String, String), u64> = BTreeMap::new();
        for f in findings {
            *counts
                .entry((f.lint.name().to_string(), f.file.clone()))
                .or_default() += 1;
        }
        let mut out = String::from(
            "# anonlint baseline: grandfathered findings as lint<TAB>file<TAB>count.\n\
             # CI fails when a count grows; shrink freely.\n",
        );
        for ((lint, file), count) in counts {
            out.push_str(&format!("{lint}\t{file}\t{count}\n"));
        }
        out
    }

    /// Splits findings into `(new, grandfathered)` against this baseline,
    /// plus stale entries whose debt has been paid off.
    #[must_use]
    pub fn diff<'f>(
        &self,
        findings: &'f [Finding],
    ) -> (Vec<&'f Finding>, Vec<&'f Finding>, Vec<(String, String)>) {
        let mut used: BTreeMap<(String, String), u64> = BTreeMap::new();
        let mut fresh = Vec::new();
        let mut old = Vec::new();
        for f in findings {
            let key = (f.lint.name().to_string(), f.file.clone());
            let budget = self.entries.get(&key).copied().unwrap_or(0);
            let slot = used.entry(key).or_default();
            if *slot < budget {
                *slot += 1;
                old.push(f);
            } else {
                fresh.push(f);
            }
        }
        let stale = self
            .entries
            .iter()
            .filter(|(key, budget)| used.get(*key).copied().unwrap_or(0) < **budget)
            .map(|(key, _)| key.clone())
            .collect();
        (fresh, old, stale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_algo(src: &str) -> Vec<Finding> {
        lint_source(
            "crates/core/src/algorithms/fixture.rs",
            src,
            Scope::Algorithms,
        )
    }

    fn lint_sim(src: &str) -> Vec<Finding> {
        lint_source("crates/sim/src/fixture.rs", src, Scope::Runtime)
    }

    fn lint_net(src: &str) -> Vec<Finding> {
        lint_source("crates/net/src/fixture.rs", src, Scope::NetDriver)
    }

    fn names(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.lint.name()).collect()
    }

    #[test]
    fn net_driver_code_must_not_write_the_meter() {
        let src = r"
            pub fn route(&self, meter: &mut CostMeter) {
                meter.record_send(bits);
            }
        ";
        let f = lint_net(src);
        assert_eq!(names(&f), vec!["unmetered-send"], "{f:?}");
    }

    #[test]
    fn the_net_hub_is_exempt_like_sim_runtime() {
        let src =
            "pub fn route(&self) { let mut inner = self.lock(); inner.meter.record_send(bits); }";
        let f = lint_source("crates/net/src/hub.rs", src, Scope::NetDriver);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn net_driver_code_must_not_read_ring_wiring() {
        let src = "pub fn wire(t: &RingTopology) { let x = t.neighbor(0, Port::Left); }";
        let f = lint_net(src);
        assert_eq!(names(&f), vec!["anonymity-breach"], "{f:?}");
        let suppressed = format!("// anonlint: allow(anonymity-breach) -- substrate wiring\n{src}");
        assert!(lint_net(&suppressed).is_empty());
    }

    #[test]
    fn net_driver_scope_keeps_the_runtime_unwrap_rule() {
        let f = lint_net("pub fn f(x: Option<u8>) -> u8 { x.unwrap() }");
        assert_eq!(names(&f), vec!["no-unwrap-in-runtime"], "{f:?}");
    }

    #[test]
    fn seeded_anonymity_breach_is_detected() {
        let src = r"
            pub fn run(config: &RingConfig<u8>) -> SyncReport<u8> {
                let mut engine = SyncEngine::from_config(config, |i, &input| {
                    Proc::new(i, input) // branches on the processor index!
                });
                engine.run().unwrap()
            }
        ";
        let f = lint_algo(src);
        assert_eq!(names(&f), vec!["anonymity-breach"], "{f:?}");
        assert!(f[0].message.contains("`i`"));
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn underscore_index_parameter_is_sanctioned() {
        let src = r#"
            pub fn run(config: &RingConfig<u8>) -> SyncReport<u8> {
                let mut engine = SyncEngine::from_config(config, |_, &input| Proc::new(input));
                engine.run().expect("engine cannot fail on a valid config")
            }
        "#;
        assert_eq!(lint_algo(src), vec![]);
    }

    #[test]
    fn seeded_unmetered_send_is_detected() {
        let src = r"
            fn sneak(&mut self, fabric: &mut LinkFabric<u8>) {
                fabric.queues[0].push_back(message); // bypasses the meter
            }
        ";
        let f = lint_algo(src);
        assert!(names(&f).contains(&"unmetered-send"), "{f:?}");
    }

    #[test]
    fn record_send_outside_runtime_module_is_flagged() {
        let f = lint_sim("fn cheat(m: &mut CostMeter) { m.record_send(0, 8); }");
        assert_eq!(names(&f), vec!["unmetered-send"]);
        // … but inside sim/src/runtime it is the sanctioned implementation.
        let ok = lint_source(
            "crates/sim/src/runtime/mailbox.rs",
            "fn send(m: &mut CostMeter) { m.record_send(0, 8); }",
            Scope::Runtime,
        );
        assert_eq!(ok, vec![]);
    }

    #[test]
    fn span_coverage_requires_in_span_when_sending() {
        let bare = "fn step(&mut self) -> Step<u8, u8> { Step::send_left(1) }";
        let f = lint_algo(bare);
        // Both tiers agree: no span anywhere (file-level) and the send
        // site itself is undominated (path-level).
        assert_eq!(names(&f), vec!["span-coverage", "span-dominance"]);
        let spanned =
            "fn step(&mut self) -> Step<u8, u8> { Step::send_left(1).in_span(\"probe\", 0) }";
        assert_eq!(lint_algo(spanned), vec![]);
        let silent = "fn helper() -> u64 { 42 }";
        assert_eq!(lint_algo(silent), vec![]);
    }

    #[test]
    fn field_built_sends_count_for_span_coverage() {
        let src = "fn step(&mut self) { step.to_right = Some(Msg::Token); }";
        assert_eq!(
            names(&lint_algo(src)),
            vec!["span-coverage", "span-dominance"]
        );
    }

    #[test]
    fn unwrap_in_runtime_is_flagged_but_not_in_tests_or_docs() {
        let src = r#"
            /// ```
            /// engine.run().unwrap(); // doc example: fine
            /// ```
            fn hot_path(q: &mut Queue) { let head = q.pop().unwrap(); }

            #[cfg(test)]
            mod tests {
                #[test]
                fn probe() { build().unwrap(); }
            }
        "#;
        let f = lint_sim(src);
        assert_eq!(names(&f), vec!["no-unwrap-in-runtime"]);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn option_unwrap_path_form_is_flagged_too() {
        let f = lint_sim("fn f(v: Vec<Option<u8>>) { v.into_iter().map(Option::unwrap); }");
        assert_eq!(names(&f), vec!["no-unwrap-in-runtime"]);
    }

    #[test]
    fn unsafe_is_always_a_finding() {
        let f = lint_sim("fn f() { unsafe { core::hint::unreachable_unchecked() } }");
        assert!(names(&f).contains(&"forbid-unsafe"));
    }

    #[test]
    fn crate_roots_must_forbid_unsafe_declaratively() {
        let f = lint_source("crates/sim/src/lib.rs", "pub mod runtime;", Scope::Runtime);
        assert!(names(&f).contains(&"forbid-unsafe"), "{f:?}");
        let ok = lint_source(
            "crates/sim/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod runtime;",
            Scope::Runtime,
        );
        assert_eq!(ok, vec![]);
    }

    #[test]
    fn suppressions_require_a_reason_and_a_known_lint() {
        let justified = r#"
            // anonlint: allow(no-unwrap-in-runtime) -- head checked by caller
            fn f(q: &mut Queue) { q.pop().unwrap(); }
        "#;
        assert_eq!(lint_sim(justified), vec![]);

        let trailing = "fn f(q: &mut Queue) { q.pop().unwrap(); } \
                        // anonlint: allow(no-unwrap-in-runtime) -- head checked above";
        assert_eq!(lint_sim(trailing), vec![]);

        let unjustified = r#"
            // anonlint: allow(no-unwrap-in-runtime)
            fn f(q: &mut Queue) { q.pop().unwrap(); }
        "#;
        let f = lint_sim(unjustified);
        assert_eq!(
            names(&f),
            vec!["malformed-suppression", "no-unwrap-in-runtime"],
            "{f:?}"
        );

        let unknown = "// anonlint: allow(made-up-lint) -- because\nfn f() {}";
        assert_eq!(names(&lint_sim(unknown)), vec!["malformed-suppression"]);
    }

    #[test]
    fn file_level_suppression_covers_every_occurrence() {
        let src = r#"
            //! anonlint: allow-file(no-unwrap-in-runtime) -- shim crate, test-only surface
            fn a(q: &mut Queue) { q.pop().unwrap(); }
            fn b(q: &mut Queue) { q.pop().unwrap(); }
        "#;
        assert_eq!(lint_sim(src), vec![]);
    }

    #[test]
    fn suppression_does_not_leak_past_the_next_line() {
        let src = r#"
            // anonlint: allow(no-unwrap-in-runtime) -- only the next line
            fn a(q: &mut Queue) { q.pop().unwrap(); }
            fn b(q: &mut Queue) { q.pop().unwrap(); }
        "#;
        let f = lint_sim(src);
        assert_eq!(names(&f), vec!["no-unwrap-in-runtime"]);
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn anonymity_denylist_catches_topology_introspection() {
        let f =
            lint_algo("fn peek(t: &RingTopology) { let (to, port) = t.neighbor(0, Port::Left); }");
        assert_eq!(names(&f), vec!["anonymity-breach"]);
    }

    #[test]
    fn anonymity_denylist_covers_the_port_topology_api() {
        for probe in [
            "fn peek(t: &dyn Topology) { let (to, p) = t.neighbor_port(0, PortId::LEFT); }",
            "fn peek(t: &GraphTopology) { let d = t.wiring_digest(); }",
            "fn peek(t: &DynamicTopology) { let d = t.round_digest(3); }",
            "fn peek(t: &DynamicTopology) { let e = t.active_edges(0); }",
            "fn peek(t: &GraphTopology) { let c = t.components(); }",
            "fn peek(t: &dyn Topology) { let a = t.is_active(0, 1, PortId::LEFT); }",
            "fn grab(t: &DynamicTopology) { let s = t.local_schedule(7); }",
        ] {
            let f = lint_algo(probe);
            assert_eq!(names(&f), vec!["anonymity-breach"], "{probe}");
        }
    }

    #[test]
    fn topology_trait_impls_are_sanctioned_wiring_definitions() {
        let src = r"
            impl Topology for Wheel {
                fn neighbor_port(&self, i: usize, p: PortId) -> (usize, PortId) {
                    self.inner.neighbor_port(i, p)
                }
                fn is_active(&self, r: u64, i: usize, p: PortId) -> bool {
                    self.inner.is_active(r, i, p)
                }
            }
        ";
        assert_eq!(lint_algo(src), vec![]);
        // …but an inherent impl (no `for`) gets no exemption.
        let inherent = r"
            impl Sneaky {
                fn peek(&self, t: &dyn Topology) -> bool { t.is_active(0, 0, PortId::LEFT) }
            }
        ";
        assert_eq!(names(&lint_algo(inherent)), vec!["anonymity-breach"]);
    }

    #[test]
    fn baseline_grandfathers_exact_counts_and_flags_growth() {
        let findings = vec![
            finding(Lint::NoUnwrapInRuntime, "a.rs", 3, "x"),
            finding(Lint::NoUnwrapInRuntime, "a.rs", 9, "y"),
            finding(Lint::SpanCoverage, "b.rs", 1, "z"),
        ];
        let baseline = Baseline::parse("no-unwrap-in-runtime\ta.rs\t1\n").unwrap();
        let (fresh, old, stale) = baseline.diff(&findings);
        assert_eq!(fresh.len(), 2, "one unwrap over budget + uncovered span");
        assert_eq!(old.len(), 1);
        assert!(stale.is_empty());

        // Round trip: render → parse covers everything.
        let full = Baseline::parse(&Baseline::render(&findings)).unwrap();
        let (fresh, old, stale) = full.diff(&findings);
        assert!(fresh.is_empty());
        assert_eq!(old.len(), 3);
        assert!(stale.is_empty());

        // Paid-off debt shows up as stale.
        let (_, _, stale) = full.diff(&findings[..1]);
        assert!(!stale.is_empty());
    }

    #[test]
    fn identity_taint_catches_flows_the_denylist_cannot_see() {
        let src = r#"
            fn step(&mut self, from: PortId) -> Step<Msg> {
                let who = from;
                Step::send(from, Msg::Claim(who)).in_span("claim", 0)
            }
        "#;
        let f = lint_algo(src);
        assert_eq!(names(&f), vec!["identity-taint"], "{f:?}");
        assert!(f[0].message.contains("port-identity"), "{}", f[0].message);
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn identity_taint_flags_wiring_dependent_branches() {
        let src = r"
            //! anonlint: allow-file(anonymity-breach) -- fixture reads wiring deliberately
            fn peek(&mut self, t: &RingTopology) {
                let d = t.wiring_digest();
                if d == 0 { self.halt(); }
            }
        ";
        let f = lint_algo(src);
        assert_eq!(names(&f), vec!["identity-taint"], "{f:?}");
        assert_eq!(f[0].line, 5);
        assert!(f[0].message.contains("wiring"), "{}", f[0].message);
    }

    #[test]
    fn span_dominance_distinguishes_covered_and_bare_paths() {
        let src = r#"
            fn covered(&mut self) -> Step<u8> {
                let mut step = Step::idle();
                step.to_left = Some(Msg::Probe);
                step.in_span("probe", self.phase)
            }
            fn bare(&mut self) -> Step<u8> {
                Step::send_right(Msg::Probe)
            }
        "#;
        let f = lint_algo(src);
        assert_eq!(names(&f), vec!["span-dominance"], "{f:?}");
        assert!(f[0].message.contains("`bare`"), "{}", f[0].message);
        assert_eq!(f[0].line, 8);
    }

    #[test]
    fn hub_ops_outside_the_lock_guard_are_flagged() {
        let src = "pub fn sneak(&self) { self.inner.meter.record_send(8); }";
        let f = lint_source("crates/net/src/hub.rs", src, Scope::NetDriver);
        assert_eq!(names(&f), vec!["lock-discipline"], "{f:?}");
        assert!(f[0].message.contains("outside"), "{}", f[0].message);
    }

    #[test]
    fn hub_ops_split_across_two_lock_regions_are_flagged() {
        let src = r"
            pub fn split(&self) {
                { let mut a = self.lock(); a.meter.record_send(8); }
                { let mut b = self.lock(); b.events.push(ev); }
            }
        ";
        let f = lint_source("crates/net/src/hub.rs", src, Scope::NetDriver);
        assert_eq!(names(&f), vec!["lock-discipline"], "{f:?}");
        assert!(
            f[0].message.contains("second lock region"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn stale_suppressions_are_reported() {
        let src = r"
            // anonlint: allow(no-unwrap-in-runtime) -- nothing left to allow
            fn tidy(q: &mut Queue) -> Option<u8> { q.pop() }
        ";
        let f = lint_sim(src);
        assert_eq!(names(&f), vec!["stale-suppression"], "{f:?}");
        assert_eq!(f[0].line, 2);

        // A stale directive cannot be excused by another suppression.
        let doubled = r"
            // anonlint: allow-file(stale-suppression) -- futile
            // anonlint: allow(no-unwrap-in-runtime) -- nothing left to allow
            fn tidy(q: &mut Queue) -> Option<u8> { q.pop() }
        ";
        let f = lint_sim(doubled);
        assert_eq!(
            names(&f),
            vec!["stale-suppression", "stale-suppression"],
            "{f:?}"
        );
    }

    #[test]
    fn scope_table_claims_paths_at_component_boundaries() {
        assert_eq!(
            scope_for("crates/core/src/algorithms/leader.rs"),
            Some(Scope::Algorithms)
        );
        assert_eq!(
            scope_for("crates/sim/src/runtime/mailbox.rs"),
            Some(Scope::Runtime)
        );
        assert_eq!(scope_for("crates/net/src/hub.rs"), Some(Scope::NetDriver));
        // The serving-path rows claim exactly their files, nothing else.
        assert_eq!(
            scope_for("crates/bench/src/ringd.rs"),
            Some(Scope::NetDriver)
        );
        assert_eq!(
            scope_for("crates/bench/src/load.rs"),
            Some(Scope::NetDriver)
        );
        assert_eq!(scope_for("crates/bench/src/report.rs"), None);
        // Prefixes stop at path-component boundaries.
        assert_eq!(scope_for("crates/net/srcery.rs"), None);
        assert_eq!(scope_for("crates/core/src/algorithms_old/x.rs"), None);
    }

    #[test]
    fn findings_carry_snippet_and_why() {
        let f = lint_sim("fn f(x: Option<u8>) -> u8 { x.unwrap() }");
        assert_eq!(f[0].snippet, "fn f(x: Option<u8>) -> u8 { x.unwrap() }");
        let shown = f[0].to_string();
        assert!(shown.contains("| fn f"), "{shown}");
        assert!(shown.contains("= why:"), "{shown}");
    }

    #[test]
    fn baseline_rejects_garbage() {
        assert!(Baseline::parse("not-a-lint\ta.rs\t1\n").is_err());
        assert!(Baseline::parse("no-unwrap-in-runtime a.rs 1\n").is_err());
        assert!(Baseline::parse("no-unwrap-in-runtime\ta.rs\tmany\n").is_err());
        assert!(Baseline::parse("# comment\n\n").unwrap().entries.is_empty());
    }
}
