//! A best-effort recursive-descent parser from the [`crate::lexer`]
//! token stream to the [`crate::ast`] tree.
//!
//! Design constraints, in order:
//!
//! 1. **Total.** The parser never panics and always terminates: every
//!    loop consumes at least one token or exits, and expression
//!    recursion is depth-capped. Tokens that do not fit the grammar
//!    subset collapse into [`Expr::Opaque`] (an untainted, effect-free
//!    leaf — a documented soundness gap, not an error).
//! 2. **Shape-preserving where the lints look.** Item nesting, statement
//!    order, calls/method calls/field accesses/assignments/branches, and
//!    the *bound names* of patterns must come out right for the files
//!    the dataflow lints analyze (`core/src/algorithms`, `net/src/hub.rs`).
//! 3. **Lossy everywhere else.** Operators, types and literal values are
//!    dropped or flattened; generics and where-clauses are skipped with
//!    balanced-angle tracking (`->` inside `Fn(..) -> T` bounds is
//!    consumed pairwise so its `>` never closes an angle).
//!
//! The token stream has no columns, so multi-character operators
//! (`=>`, `->`, `::`, `..`, `+=`, …) are recognized as adjacent
//! single-character puncts; in compiling Rust the reassembly is
//! unambiguous at the positions the parser inspects them.

use crate::ast::{Arm, Block, Expr, File, FnItem, ImplItem, Item, ModItem, Param, Stmt, TraitItem};
use crate::lexer::{Token, TokenKind};

/// Maximum expression nesting before the parser bails to
/// [`Expr::Opaque`]; real code in this repo nests well under this.
const MAX_DEPTH: usize = 200;

/// Parses a token stream (comments are ignored; the caller usually also
/// drops `#[cfg(test)]`-masked regions first) into a [`File`].
#[must_use]
pub fn parse_tokens(tokens: &[Token]) -> File {
    let toks: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
    };
    File {
        items: p.items_until_eof(),
    }
}

/// Convenience: lex then parse a source string.
#[must_use]
pub fn parse_source(source: &str) -> File {
    parse_tokens(&crate::lexer::lex(source))
}

struct Parser<'a> {
    toks: Vec<&'a Token>,
    pos: usize,
    depth: usize,
}

/// Identifiers that never bind names in patterns.
const PATTERN_KEYWORDS: &[&str] = &["mut", "ref", "box", "_", "true", "false"];

impl<'a> Parser<'a> {
    // ----- token primitives ------------------------------------------------

    fn tok(&self, off: usize) -> Option<&'a Token> {
        self.toks.get(self.pos + off).copied()
    }

    fn eof(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn line(&self) -> usize {
        self.tok(0)
            .or_else(|| self.toks.last().copied())
            .map_or(1, |t| t.line)
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn is_p(&self, off: usize, c: char) -> bool {
        self.tok(off).is_some_and(|t| t.is_punct(c))
    }

    fn is_i(&self, off: usize, s: &str) -> bool {
        self.tok(off).is_some_and(|t| t.is_ident(s))
    }

    fn is_kind(&self, off: usize, kind: TokenKind) -> bool {
        self.tok(off).is_some_and(|t| t.kind == kind)
    }

    /// Eats punctuation `c` if present; reports whether it did.
    fn eat_p(&mut self, c: char) -> bool {
        if self.is_p(0, c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_i(&mut self, s: &str) -> bool {
        if self.is_i(0, s) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Current ident text, if the current token is an identifier.
    fn ident_text(&self) -> Option<&'a str> {
        self.tok(0)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
    }

    /// Whether the tokens at `off`, `off+1` are the puncts `a`, `b`.
    fn pair(&self, off: usize, a: char, b: char) -> bool {
        self.is_p(off, a) && self.is_p(off + 1, b)
    }

    // ----- skipping helpers ------------------------------------------------

    /// Skips one `#[…]` / `#![…]` attribute if present.
    fn skip_attr(&mut self) -> bool {
        if !self.is_p(0, '#') {
            return false;
        }
        let bracket = if self.is_p(1, '[') {
            1
        } else if self.is_p(1, '!') && self.is_p(2, '[') {
            2
        } else {
            return false;
        };
        self.pos += bracket + 1; // past `[`
        let mut depth = 1usize;
        while !self.eof() && depth > 0 {
            if self.is_p(0, '[') {
                depth += 1;
            } else if self.is_p(0, ']') {
                depth -= 1;
            }
            self.bump();
        }
        true
    }

    fn skip_attrs(&mut self) {
        while self.skip_attr() {}
    }

    /// Skips a balanced `<…>` region (current token must be `<`).
    /// `->` inside (`Fn(u8) -> bool` bounds) is consumed pairwise so its
    /// `>` never closes an angle; braces/parens inside are consumed
    /// blindly (angle depth in valid code is self-consistent).
    fn skip_angles(&mut self) {
        debug_assert!(self.is_p(0, '<'));
        self.bump();
        let mut depth = 1usize;
        while !self.eof() && depth > 0 {
            if self.pair(0, '-', '>') || self.pair(0, '=', '>') {
                self.pos += 2;
            } else if self.is_p(0, '<') {
                depth += 1;
                self.bump();
            } else if self.is_p(0, '>') {
                depth -= 1;
                self.bump();
            } else if self.is_p(0, ';') {
                break; // malformed input; bail rather than run away
            } else {
                self.bump();
            }
        }
    }

    /// Skips a balanced bracket region; current token must be `open`.
    fn skip_balanced(&mut self, open: char, close: char) {
        debug_assert!(self.is_p(0, open));
        self.bump();
        let mut depth = 1usize;
        while !self.eof() && depth > 0 {
            if self.is_p(0, open) {
                depth += 1;
            } else if self.is_p(0, close) {
                depth -= 1;
            }
            self.bump();
        }
    }

    /// Skips a type, collecting its identifier tokens (at every generic
    /// depth) minus keywords and lifetimes. Stops at a `stop` punct or
    /// `stop_ident` seen at zero bracket/angle depth.
    fn skip_type(&mut self, stops: &[char], stop_idents: &[&str]) -> Vec<String> {
        let mut idents = Vec::new();
        let mut angle = 0usize;
        let mut nest = 0usize; // (), [], {}
        while let Some(t) = self.tok(0) {
            if angle == 0 && nest == 0 {
                if let Some(&c) = stops
                    .iter()
                    .find(|&&c| t.is_punct(c) && !(c == '=' && self.is_p(1, '=')))
                {
                    let _ = c;
                    break;
                }
                if stop_idents.iter().any(|s| t.is_ident(s)) {
                    break;
                }
            }
            if self.pair(0, '-', '>') {
                self.pos += 2;
                continue;
            }
            match t.kind {
                TokenKind::Ident => {
                    if !matches!(t.text.as_str(), "mut" | "dyn" | "impl" | "ref" | "as") {
                        idents.push(t.text.clone());
                    }
                    self.bump();
                }
                TokenKind::Punct => {
                    let c = t.text.chars().next().unwrap_or(' ');
                    match c {
                        '<' => angle += 1,
                        '>' => angle = angle.saturating_sub(1),
                        '(' | '[' | '{' => nest += 1,
                        ')' | ']' | '}' => {
                            if nest == 0 {
                                break; // closing a bracket we did not open
                            }
                            nest -= 1;
                        }
                        _ => {}
                    }
                    self.bump();
                }
                _ => self.bump(),
            }
        }
        idents
    }

    /// Scans a pattern, collecting the names it binds. Stops at a `stop`
    /// punct, the punct pair `=>`, or a `stop_ident`, each at zero
    /// bracket depth. `=` in `stops` does not match `==` or `=>`.
    fn scan_pattern(&mut self, stops: &[char], stop_idents: &[&str]) -> Vec<String> {
        let mut bound = Vec::new();
        let mut nest = 0usize;
        while let Some(t) = self.tok(0) {
            if nest == 0 {
                let stop_hit = stops.iter().any(|&c| {
                    t.is_punct(c)
                        && !(c == '=' && (self.is_p(1, '=') || self.is_p(1, '>')))
                        && !(c == ':'
                            && (self.is_p(1, ':')
                                || (self.pos >= 1
                                    && self
                                        .toks
                                        .get(self.pos - 1)
                                        .is_some_and(|p| p.is_punct(':')))))
                });
                if stop_hit || stop_idents.iter().any(|s| t.is_ident(s)) {
                    break;
                }
                if self.pair(0, '=', '>') && stops.contains(&'=') {
                    break;
                }
            }
            match t.kind {
                TokenKind::Ident => {
                    let name = t.text.as_str();
                    let is_path_seg =
                        self.pair(1, ':', ':') || self.is_p(1, '(') || self.is_p(1, '{');
                    // `field: pat` inside a struct pattern (at depth 0 a
                    // `:` is a type ascription, not a field).
                    let is_field_name = nest > 0 && self.is_p(1, ':') && !self.is_p(2, ':');
                    let after_path = self.pos >= 2
                        && self.toks.get(self.pos - 1).is_some_and(|p| p.is_punct(':'))
                        && self.toks.get(self.pos - 2).is_some_and(|p| p.is_punct(':'));
                    let camel = name.chars().next().is_some_and(char::is_uppercase);
                    if !is_path_seg
                        && !is_field_name
                        && !after_path
                        && !camel
                        && !PATTERN_KEYWORDS.contains(&name)
                    {
                        bound.push(t.text.clone());
                    }
                    self.bump();
                }
                TokenKind::Punct => {
                    let c = t.text.chars().next().unwrap_or(' ');
                    match c {
                        '(' | '[' | '{' => nest += 1,
                        ')' | ']' | '}' => {
                            if nest == 0 {
                                break;
                            }
                            nest -= 1;
                        }
                        _ => {}
                    }
                    self.bump();
                }
                _ => self.bump(),
            }
        }
        bound
    }

    // ----- items -----------------------------------------------------------

    fn items_until_eof(&mut self) -> Vec<Item> {
        let mut items = Vec::new();
        while !self.eof() {
            let before = self.pos;
            if let Some(item) = self.parse_item() {
                items.push(item);
            }
            if self.pos == before {
                self.bump(); // always make progress
            }
        }
        items
    }

    fn items_until_close(&mut self) -> Vec<Item> {
        let mut items = Vec::new();
        while !self.eof() && !self.is_p(0, '}') {
            let before = self.pos;
            if let Some(item) = self.parse_item() {
                items.push(item);
            }
            if self.pos == before {
                self.bump();
            }
        }
        self.eat_p('}');
        items
    }

    fn parse_item(&mut self) -> Option<Item> {
        self.skip_attrs();
        // Visibility and item qualifiers.
        if self.eat_i("pub") && self.is_p(0, '(') {
            self.skip_balanced('(', ')');
        }
        self.eat_i("default");
        // `const fn` / `unsafe fn` / `async fn` / `extern "C" fn`.
        let line = self.line();
        if self.is_i(0, "const") && self.is_i(1, "fn") {
            self.bump();
        }
        if self.is_i(0, "unsafe") && self.is_i(1, "fn") {
            self.bump();
        }
        if self.is_i(0, "async") && self.is_i(1, "fn") {
            self.bump();
        }
        if self.is_i(0, "extern") {
            if self.is_i(1, "crate") {
                self.skip_to_semi();
                return Some(Item::Other { line });
            }
            self.bump();
            if self.is_kind(0, TokenKind::Literal) {
                self.bump();
            }
        }
        match self.ident_text() {
            Some("fn") => Some(Item::Fn(self.parse_fn())),
            Some("impl") => Some(self.parse_impl()),
            Some("trait") => Some(self.parse_trait()),
            Some("mod") => {
                self.bump();
                let name = self.ident_text().unwrap_or("?").to_string();
                self.bump();
                if self.is_p(0, '{') {
                    self.bump();
                    let items = self.items_until_close();
                    Some(Item::Mod(ModItem { name, items, line }))
                } else {
                    self.eat_p(';');
                    Some(Item::Other { line })
                }
            }
            Some("use" | "type" | "static" | "const") => {
                self.skip_to_semi();
                Some(Item::Other { line })
            }
            Some("struct" | "enum" | "union") => {
                self.skip_struct_like();
                Some(Item::Other { line })
            }
            Some("macro_rules") => {
                self.bump();
                self.eat_p('!');
                if self.is_kind(0, TokenKind::Ident) {
                    self.bump();
                }
                if self.is_p(0, '{') {
                    self.skip_balanced('{', '}');
                } else if self.is_p(0, '(') {
                    self.skip_balanced('(', ')');
                    self.eat_p(';');
                }
                Some(Item::Other { line })
            }
            _ => None,
        }
    }

    /// Skips to the end of a `use`/`const`/`static`/`type` item:
    /// the first `;` outside brace groups (`use a::{b, c};`).
    fn skip_to_semi(&mut self) {
        let mut nest = 0usize;
        while let Some(t) = self.tok(0) {
            if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                nest += 1;
            } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                if nest == 0 {
                    return; // don't eat an enclosing block's closer
                }
                nest -= 1;
            } else if t.is_punct(';') && nest == 0 {
                self.bump();
                return;
            }
            self.bump();
        }
    }

    /// Skips a `struct`/`enum`/`union` item: header, then either a
    /// braced body or a tuple body plus `;`.
    fn skip_struct_like(&mut self) {
        self.bump(); // keyword
        if self.is_kind(0, TokenKind::Ident) {
            self.bump(); // name
        }
        if self.is_p(0, '<') {
            self.skip_angles();
        }
        loop {
            if self.eof() || self.is_p(0, '}') && !self.is_p(0, '{') {
                // A stray `}` here belongs to an enclosing block.
            }
            if self.eof() {
                return;
            }
            if self.is_p(0, '{') {
                self.skip_balanced('{', '}');
                return;
            }
            if self.is_p(0, '(') {
                self.skip_balanced('(', ')');
                continue; // `struct T(u8);` — semicolon follows
            }
            if self.eat_p(';') {
                return;
            }
            if self.is_p(0, '}') {
                return; // enclosing block's closer; leave it
            }
            self.bump(); // where-clauses etc.
        }
    }

    fn parse_fn(&mut self) -> FnItem {
        let line = self.line();
        self.bump(); // `fn`
        let name = self.ident_text().unwrap_or("?").to_string();
        if self.is_kind(0, TokenKind::Ident) {
            self.bump();
        }
        if self.is_p(0, '<') {
            self.skip_angles();
        }
        let mut params = Vec::new();
        if self.is_p(0, '(') {
            self.bump();
            params = self.parse_params(')');
            self.eat_p(')');
        }
        if self.pair(0, '-', '>') {
            self.pos += 2;
            self.skip_type(&['{', ';'], &["where"]);
        }
        if self.is_i(0, "where") {
            self.skip_type(&['{', ';'], &[]);
        }
        let body = if self.is_p(0, '{') {
            Some(self.parse_block())
        } else {
            self.eat_p(';');
            None
        };
        FnItem {
            name,
            params,
            body,
            line,
        }
    }

    /// Parses a comma-separated parameter list up to (not including) the
    /// punct `close` at depth zero.
    fn parse_params(&mut self, close: char) -> Vec<Param> {
        let mut params = Vec::new();
        while !self.eof() && !self.is_p(0, close) {
            self.skip_attrs();
            let line = self.line();
            // Receivers: `self`, `mut self`, `&self`, `&mut self`, `&'a self`.
            let mut look = 0usize;
            while self.is_p(look, '&')
                || self.is_kind(look, TokenKind::Lifetime)
                || self.is_i(look, "mut")
            {
                look += 1;
            }
            if self.is_i(look, "self") {
                self.pos += look + 1;
                if self.is_p(0, ':') {
                    self.bump();
                    self.skip_type(&[',', close], &[]);
                }
                params.push(Param {
                    names: vec!["self".to_string()],
                    ty: Vec::new(),
                    line,
                });
            } else {
                let names = self.scan_pattern(&[':', ',', close], &[]);
                let ty = if self.eat_p(':') {
                    self.skip_type(&[',', close], &[])
                } else {
                    Vec::new()
                };
                params.push(Param { names, ty, line });
            }
            if !self.eat_p(',') {
                break;
            }
        }
        params
    }

    fn parse_impl(&mut self) -> Item {
        let line = self.line();
        self.bump(); // `impl`
        if self.is_p(0, '<') {
            self.skip_angles();
        }
        // Header: idents at angle depth zero until `{`/`;`. A `for`
        // separates `impl Trait for Type`.
        let mut header: Vec<String> = Vec::new();
        while let Some(t) = self.tok(0) {
            if t.is_punct('{') || t.is_punct(';') {
                break;
            }
            if t.is_punct('<') {
                self.skip_angles();
                continue;
            }
            if self.is_i(0, "where") {
                self.skip_type(&['{', ';'], &[]);
                continue;
            }
            if t.kind == TokenKind::Ident {
                header.push(t.text.clone());
            }
            self.bump();
        }
        let trait_name = header
            .iter()
            .position(|s| s == "for")
            .and_then(|i| i.checked_sub(1))
            .and_then(|i| header.get(i))
            .cloned();
        let items = if self.eat_p('{') {
            self.items_until_close()
        } else {
            self.eat_p(';');
            Vec::new()
        };
        Item::Impl(ImplItem {
            trait_name,
            items,
            line,
        })
    }

    fn parse_trait(&mut self) -> Item {
        let line = self.line();
        self.bump(); // `trait`
        let name = self.ident_text().unwrap_or("?").to_string();
        if self.is_kind(0, TokenKind::Ident) {
            self.bump();
        }
        // Generics, supertrait bounds, where clause — skip to the body.
        while !self.eof() && !self.is_p(0, '{') && !self.is_p(0, ';') {
            if self.is_p(0, '<') {
                self.skip_angles();
            } else {
                self.bump();
            }
        }
        let items = if self.eat_p('{') {
            self.items_until_close()
        } else {
            self.eat_p(';');
            Vec::new()
        };
        Item::Trait(TraitItem { name, items, line })
    }

    // ----- statements ------------------------------------------------------

    fn parse_block(&mut self) -> Block {
        let line = self.line();
        self.eat_p('{');
        let mut stmts = Vec::new();
        while !self.eof() && !self.is_p(0, '}') {
            let before = self.pos;
            self.skip_attrs();
            if self.eat_p(';') {
                continue;
            }
            if self.is_p(0, '}') {
                break;
            }
            if self.is_i(0, "let") {
                stmts.push(self.parse_let());
            } else if matches!(
                self.ident_text(),
                Some(
                    "fn" | "struct"
                        | "enum"
                        | "union"
                        | "use"
                        | "impl"
                        | "mod"
                        | "trait"
                        | "static"
                        | "type"
                        | "macro_rules"
                )
            ) || (self.is_i(0, "const") && !self.is_p(1, '{'))
            {
                if let Some(item) = self.parse_item() {
                    stmts.push(Stmt::Item(Box::new(item)));
                }
            } else {
                let expr = self.parse_expr(true);
                self.eat_p(';');
                stmts.push(Stmt::Expr(expr));
            }
            if self.pos == before {
                self.bump();
            }
        }
        self.eat_p('}');
        Block { stmts, line }
    }

    fn parse_let(&mut self) -> Stmt {
        let line = self.line();
        self.bump(); // `let`
        let bound = self.scan_pattern(&['=', ':', ';'], &[]);
        if self.eat_p(':') {
            self.skip_type(&['=', ';'], &[]);
        }
        let init = if self.eat_p('=') {
            Some(self.parse_expr(true))
        } else {
            None
        };
        let else_block = if self.eat_i("else") {
            Some(self.parse_block())
        } else {
            None
        };
        self.eat_p(';');
        Stmt::Let {
            bound,
            init,
            else_block,
            line,
        }
    }

    // ----- expressions -----------------------------------------------------

    fn parse_expr(&mut self, allow_struct: bool) -> Expr {
        if self.depth >= MAX_DEPTH {
            let line = self.line();
            self.bump();
            return Expr::Opaque { line };
        }
        self.depth += 1;
        let e = self.parse_assign(allow_struct);
        self.depth -= 1;
        e
    }

    fn parse_assign(&mut self, allow_struct: bool) -> Expr {
        let lhs = self.parse_binary(allow_struct);
        let line = self.line();
        // `=` (not `==`, not `=>`).
        if self.is_p(0, '=') && !self.is_p(1, '=') && !self.is_p(1, '>') {
            self.bump();
            let rhs = self.parse_expr(allow_struct);
            return Expr::Assign {
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                compound: false,
                line,
            };
        }
        // Compound assignment: `+=` … and `<<=`/`>>=`.
        let compound = if "+-*/%^&|".contains(self.punct_char(0)) && self.is_p(1, '=') {
            Some(2)
        } else if (self.pair(0, '<', '<') || self.pair(0, '>', '>')) && self.is_p(2, '=') {
            Some(3)
        } else {
            None
        };
        if let Some(n) = compound {
            self.pos += n;
            let rhs = self.parse_expr(allow_struct);
            return Expr::Assign {
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                compound: true,
                line,
            };
        }
        lhs
    }

    fn punct_char(&self, off: usize) -> char {
        self.tok(off)
            .filter(|t| t.kind == TokenKind::Punct)
            .and_then(|t| t.text.chars().next())
            .unwrap_or('\0')
    }

    /// How many tokens of binary operator sit at the cursor, or 0.
    /// Assignment-shaped sequences (`+=`, `<<=`, lone `=`) return 0 so
    /// [`Self::parse_assign`] can claim them.
    fn binary_op_len(&self) -> usize {
        let a = self.punct_char(0);
        let b = self.punct_char(1);
        match (a, b) {
            ('=', '=') | ('!', '=') | ('<', '=') | ('>', '=') | ('&', '&') | ('|', '|') => 2,
            ('<', '<') | ('>', '>') => {
                if self.punct_char(2) == '=' {
                    0 // `<<=` is a compound assignment
                } else {
                    2
                }
            }
            ('.', '.') => {
                if self.punct_char(2) == '=' {
                    3 // `..=`
                } else {
                    2
                }
            }
            ('-', '>') | ('=', '>') => 0,
            ('+' | '-' | '*' | '/' | '%' | '^' | '&' | '|', '=') => 0,
            ('+' | '-' | '*' | '/' | '%' | '^' | '&' | '|' | '<' | '>', _) => 1,
            _ => 0,
        }
    }

    /// Whether the cursor could start an expression (used for optional
    /// operands after `return`/`break` and open-ended ranges).
    fn starts_expr(&self) -> bool {
        match self.tok(0) {
            None => false,
            Some(t) => match t.kind {
                TokenKind::Punct => !matches!(
                    t.text.chars().next().unwrap_or(' '),
                    ')' | ']' | '}' | ',' | ';' | '=' | '>'
                ),
                TokenKind::Ident => t.text != "else",
                _ => true,
            },
        }
    }

    fn parse_binary(&mut self, allow_struct: bool) -> Expr {
        let mut lhs = self.parse_unary(allow_struct);
        loop {
            let n = self.binary_op_len();
            if n == 0 {
                break;
            }
            let line = self.line();
            self.pos += n;
            // Open-ended range: `a..` with nothing rangeable after.
            let rhs = if !self.starts_expr() {
                Expr::Lit { line }
            } else {
                self.parse_unary(allow_struct)
            };
            lhs = Expr::Binary {
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        lhs
    }

    fn parse_unary(&mut self, allow_struct: bool) -> Expr {
        if self.depth >= MAX_DEPTH {
            let line = self.line();
            self.bump();
            return Expr::Opaque { line };
        }
        self.depth += 1;
        let e = self.parse_unary_inner(allow_struct);
        self.depth -= 1;
        e
    }

    fn parse_unary_inner(&mut self, allow_struct: bool) -> Expr {
        let line = self.line();
        // Prefix `..` / `..=`: open-start range.
        if self.pair(0, '.', '.') {
            self.pos += if self.punct_char(2) == '=' { 3 } else { 2 };
            let rhs = if self.starts_expr() {
                self.parse_unary(allow_struct)
            } else {
                Expr::Lit { line }
            };
            return Expr::Binary {
                lhs: Box::new(Expr::Lit { line }),
                rhs: Box::new(rhs),
                line,
            };
        }
        if self.is_p(0, '&') && !self.is_p(1, '&') || self.is_p(0, '&') && self.is_p(1, '&') {
            // `&e`, `&mut e`, `&&e` (two refs — recursion handles it).
            self.bump();
            self.eat_i("mut");
            let inner = self.parse_unary(allow_struct);
            return Expr::Unary {
                op: '&',
                expr: Box::new(inner),
                line,
            };
        }
        for op in ['*', '!', '-'] {
            if self.is_p(0, op) {
                self.bump();
                let inner = self.parse_unary(allow_struct);
                return Expr::Unary {
                    op,
                    expr: Box::new(inner),
                    line,
                };
            }
        }
        if self.is_i(0, "move") && (self.is_p(1, '|') || self.is_i(1, "async")) {
            self.bump();
        }
        if self.is_p(0, '|') {
            return self.parse_closure();
        }
        let primary = self.parse_primary(allow_struct);
        self.parse_postfix(primary, allow_struct)
    }

    fn parse_closure(&mut self) -> Expr {
        let line = self.line();
        let params = if self.pair(0, '|', '|') {
            self.pos += 2;
            Vec::new()
        } else {
            self.bump(); // `|`
            let params = self.parse_params('|');
            self.eat_p('|');
            params
        };
        if self.pair(0, '-', '>') {
            self.pos += 2;
            self.skip_type(&['{'], &[]);
        }
        let body = self.parse_expr(true);
        Expr::Closure {
            params,
            body: Box::new(body),
            line,
        }
    }

    fn parse_postfix(&mut self, mut e: Expr, allow_struct: bool) -> Expr {
        loop {
            let line = self.line();
            if self.is_p(0, '.') && !self.is_p(1, '.') {
                if self.is_i(1, "await") {
                    self.pos += 2;
                    continue;
                }
                if self.is_kind(1, TokenKind::Number) {
                    let name = self.tok(1).map_or_else(String::new, |t| t.text.clone());
                    self.pos += 2;
                    e = Expr::Field {
                        base: Box::new(e),
                        name,
                        line,
                    };
                    continue;
                }
                if self.is_kind(1, TokenKind::Ident) {
                    let name = self.tok(1).map_or_else(String::new, |t| t.text.clone());
                    self.pos += 2;
                    // Optional turbofish before a call.
                    if self.pair(0, ':', ':') && self.is_p(2, '<') {
                        self.pos += 2;
                        self.skip_angles();
                    }
                    if self.is_p(0, '(') {
                        self.bump();
                        let args = self.parse_call_args();
                        e = Expr::MethodCall {
                            recv: Box::new(e),
                            method: name,
                            args,
                            line,
                        };
                    } else {
                        e = Expr::Field {
                            base: Box::new(e),
                            name,
                            line,
                        };
                    }
                    continue;
                }
                // `.` followed by something unexpected: consume the dot.
                self.bump();
                continue;
            }
            if self.is_p(0, '?') {
                self.bump();
                e = Expr::Try {
                    expr: Box::new(e),
                    line,
                };
                continue;
            }
            if self.is_p(0, '(') {
                self.bump();
                let args = self.parse_call_args();
                e = Expr::Call {
                    callee: Box::new(e),
                    args,
                    line,
                };
                continue;
            }
            if self.is_p(0, '[') {
                self.bump();
                let index = self.parse_expr(true);
                self.eat_p(']');
                e = Expr::Index {
                    base: Box::new(e),
                    index: Box::new(index),
                    line,
                };
                continue;
            }
            if self.is_i(0, "as") {
                self.bump();
                self.skip_cast_type();
                continue;
            }
            let _ = allow_struct;
            break;
        }
        e
    }

    /// Skips the type after `as`: identifiers, paths, one balanced angle
    /// or paren group each time one opens.
    fn skip_cast_type(&mut self) {
        loop {
            if self.is_kind(0, TokenKind::Ident)
                && !matches!(self.ident_text(), Some("if" | "else" | "match" | "in"))
            {
                self.bump();
            } else if self.pair(0, ':', ':') {
                self.pos += 2;
            } else if self.is_p(0, '<') {
                self.skip_angles();
            } else if self.is_p(0, '&')
                || self.is_i(0, "mut")
                || self.is_i(0, "dyn")
                || self.is_kind(0, TokenKind::Lifetime)
            {
                self.bump();
            } else {
                break;
            }
        }
    }

    /// Parses comma-separated call arguments; the opening `(` is already
    /// consumed. Consumes the closing `)`.
    fn parse_call_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        while !self.eof() && !self.is_p(0, ')') {
            let before = self.pos;
            args.push(self.parse_expr(true));
            self.eat_p(',');
            if self.pos == before {
                self.bump();
            }
        }
        self.eat_p(')');
        args
    }

    fn parse_primary(&mut self, allow_struct: bool) -> Expr {
        let line = self.line();
        let Some(t) = self.tok(0) else {
            return Expr::Opaque { line };
        };
        match t.kind {
            TokenKind::Number | TokenKind::Literal | TokenKind::Lifetime => {
                self.bump();
                // A label: `'outer: loop { … }` — parse the loop itself.
                if t.kind == TokenKind::Lifetime && self.eat_p(':') {
                    return self.parse_primary(allow_struct);
                }
                Expr::Lit { line }
            }
            TokenKind::Punct => match t.text.chars().next().unwrap_or(' ') {
                '(' => {
                    self.bump();
                    let mut items = Vec::new();
                    while !self.eof() && !self.is_p(0, ')') {
                        let before = self.pos;
                        items.push(self.parse_expr(true));
                        self.eat_p(',');
                        if self.pos == before {
                            self.bump();
                        }
                    }
                    self.eat_p(')');
                    Expr::Tuple { items, line }
                }
                '[' => {
                    self.bump();
                    let mut items = Vec::new();
                    while !self.eof() && !self.is_p(0, ']') {
                        let before = self.pos;
                        items.push(self.parse_expr(true));
                        if !self.eat_p(',') {
                            self.eat_p(';'); // `[x; N]` repeat syntax
                        }
                        if self.pos == before {
                            self.bump();
                        }
                    }
                    self.eat_p(']');
                    Expr::Tuple { items, line }
                }
                '{' => Expr::Block(self.parse_block()),
                '<' => {
                    // Qualified path `<T as Trait>::assoc(…)`.
                    self.skip_angles();
                    let mut segs = Vec::new();
                    while self.pair(0, ':', ':') && self.is_kind(2, TokenKind::Ident) {
                        segs.push(self.tok(2).map_or_else(String::new, |t| t.text.clone()));
                        self.pos += 3;
                    }
                    Expr::Path { segs, line }
                }
                '#' => {
                    self.skip_attrs();
                    if self.starts_expr() {
                        self.parse_primary(allow_struct)
                    } else {
                        Expr::Opaque { line }
                    }
                }
                _ => {
                    self.bump();
                    Expr::Opaque { line }
                }
            },
            TokenKind::Ident => match t.text.as_str() {
                "if" => self.parse_if(),
                "match" => self.parse_match(),
                "while" => {
                    self.bump();
                    let (cond, bound) = self.parse_condition();
                    let body = self.parse_block();
                    Expr::While {
                        cond: Box::new(cond),
                        bound,
                        body,
                        line,
                    }
                }
                "loop" => {
                    self.bump();
                    let body = self.parse_block();
                    Expr::Loop { body, line }
                }
                "for" => {
                    self.bump();
                    let bound = self.scan_pattern(&[], &["in"]);
                    self.eat_i("in");
                    let iter = self.parse_expr(false);
                    let body = self.parse_block();
                    Expr::For {
                        bound,
                        iter: Box::new(iter),
                        body,
                        line,
                    }
                }
                "return" => {
                    self.bump();
                    let value = if self.starts_expr() {
                        Some(Box::new(self.parse_expr(true)))
                    } else {
                        None
                    };
                    Expr::Return { value, line }
                }
                "break" => {
                    self.bump();
                    if self.is_kind(0, TokenKind::Lifetime) {
                        self.bump();
                    }
                    let value = if self.starts_expr() {
                        Some(Box::new(self.parse_expr(true)))
                    } else {
                        None
                    };
                    Expr::Jump { value, line }
                }
                "continue" => {
                    self.bump();
                    if self.is_kind(0, TokenKind::Lifetime) {
                        self.bump();
                    }
                    Expr::Jump { value: None, line }
                }
                "unsafe" | "async" => {
                    self.bump();
                    if self.is_p(0, '{') {
                        Expr::Block(self.parse_block())
                    } else {
                        Expr::Opaque { line }
                    }
                }
                "move" => {
                    self.bump();
                    if self.is_p(0, '|') {
                        self.parse_closure()
                    } else {
                        Expr::Opaque { line }
                    }
                }
                "else" | "in" | "where" | "as" | "let" => {
                    self.bump();
                    Expr::Opaque { line }
                }
                _ => self.parse_path_expr(allow_struct),
            },
            _ => {
                self.bump();
                Expr::Opaque { line }
            }
        }
    }

    /// A path, and whatever it heads: macro call, struct literal, or the
    /// bare path (calls are handled by postfix).
    fn parse_path_expr(&mut self, allow_struct: bool) -> Expr {
        let line = self.line();
        let mut segs = vec![self.tok(0).map_or_else(String::new, |t| t.text.clone())];
        self.bump();
        loop {
            if self.pair(0, ':', ':') {
                if self.is_p(2, '<') {
                    self.pos += 2;
                    self.skip_angles(); // turbofish
                    continue;
                }
                if self.is_kind(2, TokenKind::Ident) {
                    segs.push(self.tok(2).map_or_else(String::new, |t| t.text.clone()));
                    self.pos += 3;
                    continue;
                }
            }
            break;
        }
        // Macro invocation.
        if self.is_p(0, '!') && !self.is_p(1, '=') {
            self.bump();
            let name = segs.last().cloned().unwrap_or_default();
            return self.parse_macro_body(name, line);
        }
        // Struct literal.
        if allow_struct && self.is_p(0, '{') {
            self.bump();
            let mut fields = Vec::new();
            while !self.eof() && !self.is_p(0, '}') {
                let before = self.pos;
                if self.pair(0, '.', '.') {
                    self.pos += 2;
                    let base = self.parse_expr(true);
                    fields.push(("..".to_string(), base));
                } else if self.is_kind(0, TokenKind::Ident) {
                    let fname = self.tok(0).map_or_else(String::new, |t| t.text.clone());
                    self.bump();
                    let value = if self.is_p(0, ':') && !self.is_p(1, ':') {
                        self.bump();
                        self.parse_expr(true)
                    } else {
                        Expr::Path {
                            segs: vec![fname.clone()],
                            line: self.line(),
                        }
                    };
                    fields.push((fname, value));
                }
                self.eat_p(',');
                if self.pos == before {
                    self.bump();
                }
            }
            self.eat_p('}');
            return Expr::Struct {
                path: segs,
                fields,
                line,
            };
        }
        Expr::Path { segs, line }
    }

    /// Parses a macro body `(…)` / `[…]` / `{…}`: finds the balanced
    /// close, attempts comma-separated expressions inside a bounded
    /// sub-parser, and always records the raw identifiers as fallback.
    fn parse_macro_body(&mut self, name: String, line: usize) -> Expr {
        let (open, close) = if self.is_p(0, '(') {
            ('(', ')')
        } else if self.is_p(0, '[') {
            ('[', ']')
        } else if self.is_p(0, '{') {
            ('{', '}')
        } else {
            return Expr::Macro {
                name,
                args: Vec::new(),
                raw_idents: Vec::new(),
                line,
            };
        };
        // Find the matching close.
        let start = self.pos + 1;
        let mut depth = 0usize;
        let mut end = start;
        let mut i = self.pos;
        while let Some(t) = self.toks.get(i) {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    end = i;
                    break;
                }
            }
            i += 1;
        }
        if depth != 0 {
            end = self.toks.len();
        }
        let raw_idents: Vec<String> = self.toks[start..end]
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .collect();
        let mut sub = Parser {
            toks: self.toks[start..end].to_vec(),
            pos: 0,
            depth: self.depth,
        };
        let mut args = Vec::new();
        while !sub.eof() {
            let before = sub.pos;
            args.push(sub.parse_expr(true));
            sub.eat_p(',');
            if sub.pos == before {
                sub.bump();
            }
        }
        self.pos = (end + 1).min(self.toks.len());
        Expr::Macro {
            name,
            args,
            raw_idents,
            line,
        }
    }

    /// An `if`/`while` condition — plain expression or `let pat = expr`.
    /// Returns the (scrutinee) expression and any bound names.
    fn parse_condition(&mut self) -> (Expr, Vec<String>) {
        if self.eat_i("let") {
            let bound = self.scan_pattern(&['='], &[]);
            self.eat_p('=');
            let scrutinee = self.parse_expr(false);
            (scrutinee, bound)
        } else {
            (self.parse_expr(false), Vec::new())
        }
    }

    fn parse_if(&mut self) -> Expr {
        let line = self.line();
        self.bump(); // `if`
        let (cond, bound) = self.parse_condition();
        let then = self.parse_block();
        let els = if self.eat_i("else") {
            if self.is_i(0, "if") {
                Some(Box::new(self.parse_if()))
            } else {
                Some(Box::new(Expr::Block(self.parse_block())))
            }
        } else {
            None
        };
        Expr::If {
            cond: Box::new(cond),
            bound,
            then,
            els,
            line,
        }
    }

    fn parse_match(&mut self) -> Expr {
        let line = self.line();
        self.bump(); // `match`
        let scrutinee = self.parse_expr(false);
        let mut arms = Vec::new();
        if self.eat_p('{') {
            while !self.eof() && !self.is_p(0, '}') {
                let before = self.pos;
                self.skip_attrs();
                let arm_line = self.line();
                self.eat_p('|'); // leading `|` in or-patterns
                let bound = self.scan_pattern(&['='], &["if"]);
                let guard = if self.eat_i("if") {
                    Some(self.parse_expr(false))
                } else {
                    None
                };
                if self.pair(0, '=', '>') {
                    self.pos += 2;
                } else {
                    // Could not find the arrow: resynchronize.
                    if self.pos == before {
                        self.bump();
                    }
                    continue;
                }
                let body = self.parse_expr(true);
                self.eat_p(',');
                arms.push(Arm {
                    bound,
                    guard,
                    body,
                    line: arm_line,
                });
                if self.pos == before {
                    self.bump();
                }
            }
            self.eat_p('}');
        }
        Expr::Match {
            scrutinee: Box::new(scrutinee),
            arms,
            line,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::parse_source;
    use crate::ast::{for_each_fn, Block, Expr, File, Item, Stmt};

    fn fns(file: &File) -> Vec<String> {
        let mut names = Vec::new();
        for_each_fn(file, &mut |f, _| names.push(f.name.clone()));
        names
    }

    fn only_fn_body(file: &File) -> &Block {
        let mut found = None;
        for item in &file.items {
            if let Item::Fn(f) = item {
                assert!(found.is_none(), "expected exactly one fn");
                found = f.body.as_ref();
            }
        }
        found.expect("fn with body")
    }

    #[test]
    fn items_and_nesting() {
        let file = parse_source(
            r#"
            use std::fmt;
            pub struct S { x: u8 }
            enum E { A, B(u8) }
            impl S { fn new() -> Self { S { x: 0 } } }
            impl fmt::Display for S {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { write!(f, "s") }
            }
            mod inner { pub fn helper() {} }
            trait T { fn sig(&self); fn dflt(&self) -> u8 { 1 } }
            pub fn free<A: Clone>(a: A, n: usize) -> Vec<A> where A: Sized { vec![a; n] }
            "#,
        );
        assert_eq!(
            fns(&file),
            vec!["new", "fmt", "helper", "sig", "dflt", "free"]
        );
        let display_impl = file.items.iter().find_map(|i| match i {
            Item::Impl(im) if im.trait_name.is_some() => Some(im),
            _ => None,
        });
        assert_eq!(
            display_impl.map(|im| im.trait_name.clone().unwrap()),
            Some("Display".to_string())
        );
    }

    #[test]
    fn impl_trait_for_with_generics() {
        let file = parse_source(
            "impl<M: Clone + Send> AsyncPortProcess<M> for Wrapper<M> { fn go(&mut self) {} }",
        );
        match &file.items[0] {
            Item::Impl(im) => assert_eq!(im.trait_name.as_deref(), Some("AsyncPortProcess")),
            other => panic!("expected impl, got {other:?}"),
        }
    }

    #[test]
    fn params_carry_type_idents_and_bound_names() {
        let file = parse_source(
            "fn f(&mut self, from: PortId, sched: Vec<Vec<PortId>>, (a, b): (u8, u8)) {}",
        );
        let mut params = Vec::new();
        for_each_fn(&file, &mut |f, _| params = f.params.clone());
        assert_eq!(params[0].names, vec!["self"]);
        assert_eq!(params[1].names, vec!["from"]);
        assert_eq!(params[1].ty, vec!["PortId"]);
        assert_eq!(params[2].ty, vec!["Vec", "Vec", "PortId"]);
        assert_eq!(params[3].names, vec!["a", "b"]);
    }

    #[test]
    fn let_patterns_bind_names() {
        let file = parse_source(
            r#"fn f() {
                let (x, y) = pair();
                let Some(msg) = inbox else { return };
                let Fin { bit, port: p } = fin;
                let OrientMsg::Marker(tag) = m;
            }"#,
        );
        let body = only_fn_body(&file);
        let bound: Vec<Vec<String>> = body
            .stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::Let { bound, .. } => Some(bound.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(bound[0], vec!["x", "y"]);
        assert_eq!(bound[1], vec!["msg"]);
        assert_eq!(bound[2], vec!["bit", "p"]);
        assert_eq!(bound[3], vec!["tag"]);
    }

    #[test]
    fn method_chains_and_field_assigns() {
        let file = parse_source(
            r#"fn f(mut step: Step) {
                step.to_left = Some(1);
                let s = step.in_span("phase", 3).and_halt(0);
                s.meter.record_send(t, bits);
            }"#,
        );
        let body = only_fn_body(&file);
        match &body.stmts[0] {
            Stmt::Expr(Expr::Assign { lhs, .. }) => match lhs.as_ref() {
                Expr::Field { name, .. } => assert_eq!(name, "to_left"),
                other => panic!("expected field lhs, got {other:?}"),
            },
            other => panic!("expected assign, got {other:?}"),
        }
        match &body.stmts[1] {
            Stmt::Let {
                init: Some(Expr::MethodCall { method, recv, .. }),
                ..
            } => {
                assert_eq!(method, "and_halt");
                match recv.as_ref() {
                    Expr::MethodCall { method, args, .. } => {
                        assert_eq!(method, "in_span");
                        assert_eq!(args.len(), 2);
                    }
                    other => panic!("expected inner call, got {other:?}"),
                }
            }
            other => panic!("expected let chain, got {other:?}"),
        }
    }

    #[test]
    fn match_if_while_for_and_closures() {
        let file = parse_source(
            r#"fn f(v: Vec<u8>) -> u8 {
                let mut acc = 0;
                for (i, x) in v.iter().enumerate() {
                    if *x > 1 && i < 9 { acc += x; } else { acc -= 1; }
                }
                while acc > 100 { acc /= 2; }
                let g = |a: u8, b| a + b;
                match acc {
                    0 => g(1, 2),
                    n if n > 50 => n,
                    _ => acc,
                }
            }"#,
        );
        let body = only_fn_body(&file);
        let tail = match body.stmts.last() {
            Some(Stmt::Expr(e)) => e,
            other => panic!("expected tail expr, got {other:?}"),
        };
        match tail {
            Expr::Match { arms, .. } => {
                assert_eq!(arms.len(), 3);
                assert_eq!(arms[1].bound, vec!["n"]);
                assert!(arms[1].guard.is_some());
            }
            other => panic!("expected match, got {other:?}"),
        }
    }

    #[test]
    fn struct_literals_vs_blocks() {
        let file = parse_source(
            r#"fn f(mode: Mode) -> Step {
                match mode { Mode::A => {} _ => {} }
                if ready { fire(); }
                Step { to_left: None, to_right: None, ..Default::default() }
            }"#,
        );
        let body = only_fn_body(&file);
        match body.stmts.last() {
            Some(Stmt::Expr(Expr::Struct { path, fields, .. })) => {
                assert_eq!(path, &vec!["Step".to_string()]);
                assert_eq!(fields.len(), 3);
                assert_eq!(fields[2].0, "..");
            }
            other => panic!("expected struct literal, got {other:?}"),
        }
    }

    #[test]
    fn macros_parse_args_and_keep_raw_idents() {
        let file = parse_source(
            r#"fn f(x: u8) {
                debug_assert!(topo.is_oriented(), "bad {}", x);
                let v = vec![1, 2, 3];
                matches!(x, 1 | 2);
            }"#,
        );
        let body = only_fn_body(&file);
        match &body.stmts[0] {
            Stmt::Expr(Expr::Macro {
                name,
                args,
                raw_idents,
                ..
            }) => {
                assert_eq!(name, "debug_assert");
                assert!(!args.is_empty());
                assert!(raw_idents.contains(&"is_oriented".to_string()));
            }
            other => panic!("expected macro, got {other:?}"),
        }
    }

    #[test]
    fn deref_assign_through_borrow() {
        let file = parse_source(
            r#"fn f(step: &mut Step, port: Port) {
                let out = match port {
                    Port::Left => &mut step.to_right,
                    Port::Right => &mut step.to_left,
                };
                *out = Some(1);
            }"#,
        );
        let body = only_fn_body(&file);
        match &body.stmts[1] {
            Stmt::Expr(Expr::Assign { lhs, .. }) => match lhs.as_ref() {
                Expr::Unary { op: '*', expr, .. } => {
                    assert!(expr.is_path(&["out"]), "got {expr:?}");
                }
                other => panic!("expected deref lhs, got {other:?}"),
            },
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn if_let_and_while_let_bind_and_keep_scrutinee() {
        let file = parse_source(
            r#"fn f(q: Queue) {
                if let Some(x) = q.pop() { use_it(x); }
                while let Some((a, b)) = q.next_pair() { use_both(a, b); }
            }"#,
        );
        let body = only_fn_body(&file);
        match &body.stmts[0] {
            Stmt::Expr(Expr::If { bound, cond, .. }) => {
                assert_eq!(bound, &vec!["x"]);
                assert!(
                    matches!(cond.as_ref(), Expr::MethodCall { method, .. } if method == "pop")
                );
            }
            other => panic!("expected if-let, got {other:?}"),
        }
        match &body.stmts[1] {
            Stmt::Expr(Expr::While { bound, .. }) => assert_eq!(bound, &vec!["a", "b"]),
            other => panic!("expected while-let, got {other:?}"),
        }
    }

    #[test]
    fn ranges_casts_try_and_turbofish_do_not_derail() {
        let file = parse_source(
            r#"fn f(n: usize) -> Result<u8, E> {
                let total = (0..n).map(|i| i as u64).sum::<u64>();
                let slice = &data[1..];
                let v = Vec::<u8>::new();
                let cfg = RingConfig::with_topology(inputs, topo)?;
                Ok((total % 251) as u8)
            }"#,
        );
        assert_eq!(fns(&file).len(), 1);
        let body = only_fn_body(&file);
        assert_eq!(body.stmts.len(), 5);
    }

    #[test]
    fn parser_is_total_on_garbage() {
        for src in [
            "fn f( {{{",
            "impl for {",
            "match",
            "}} )) ]]",
            "fn g() { let = ; 1 + }",
            "fn h() { x.((((( }",
        ] {
            let _ = parse_source(src); // must neither panic nor hang
        }
    }

    #[test]
    fn labels_and_loops() {
        let file = parse_source(
            r#"fn f() {
                'outer: loop {
                    for i in 0..3 { if i == 1 { break 'outer; } }
                }
            }"#,
        );
        assert_eq!(fns(&file), vec!["f"]);
    }
}
