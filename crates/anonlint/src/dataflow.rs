//! Intraprocedural forward dataflow over the [`crate::ast`] tree: the
//! identity-taint, span-dominance and lock-discipline analyses.
//!
//! All three are *syntactic* analyses of one function body at a time
//! (plus file-local call summaries for span application). Soundness
//! caveats — what an intraprocedural pass structurally cannot see — are
//! documented in DESIGN.md §S25; the headline ones:
//!
//! * taint does not cross function boundaries except as "calls with a
//!   tainted argument return a tainted value";
//! * containers are coarse: a `Vec<PortId>` *parameter* is not a taint
//!   seed (only a value of type exactly `PortId` is), and mutating a
//!   container through a method call does not taint the container;
//! * [`crate::ast::Expr::Opaque`] regions are untainted and effect-free.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{Arm, Block, Expr, File, FnItem, Param, Stmt};

/// What kind of identity a tainted value derives from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TaintKind {
    /// The processor index (a `from_config` construction-closure index
    /// parameter bound to a name).
    ProcessorIndex,
    /// Global wiring knowledge: the result of a topology-introspection
    /// accessor (`neighbor_port`, digests, schedules, …).
    Wiring,
    /// A port *label*: a value of type `PortId` (labels are arbitrary,
    /// so any flow into a payload leaks symmetry-breaking information;
    /// the semantic ring direction `Port` is **not** tainted — Figure 4
    /// legitimately sends `Port::Left`/`Port::Right` as data).
    PortIdentity,
}

impl TaintKind {
    /// Human-readable noun for messages.
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            TaintKind::ProcessorIndex => "processor-index",
            TaintKind::Wiring => "wiring",
            TaintKind::PortIdentity => "port-identity",
        }
    }
}

/// One origin of taint on a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintTag {
    /// Which identity kind leaked.
    pub kind: TaintKind,
    /// What introduced it (a parameter, accessor call, …).
    pub origin: String,
    /// 1-based line of the origin.
    pub line: usize,
}

/// A small taint set: at most one tag per [`TaintKind`] (the first
/// origin encountered wins — good enough for a `why` line).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Taint {
    tags: Vec<TaintTag>,
}

impl Taint {
    /// The empty taint.
    #[must_use]
    pub fn none() -> Taint {
        Taint::default()
    }

    /// A single-tag taint.
    #[must_use]
    pub fn of(kind: TaintKind, origin: impl Into<String>, line: usize) -> Taint {
        Taint {
            tags: vec![TaintTag {
                kind,
                origin: origin.into(),
                line,
            }],
        }
    }

    /// Whether no identity flows through this value.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Folds `other` in, keeping the first origin seen per kind.
    pub fn union(&mut self, other: &Taint) {
        for tag in &other.tags {
            if !self.tags.iter().any(|t| t.kind == tag.kind) {
                self.tags.push(tag.clone());
            }
        }
    }

    /// The tags present.
    #[must_use]
    pub fn tags(&self) -> &[TaintTag] {
        &self.tags
    }

    fn first_of(&self, kinds: &[TaintKind]) -> Option<&TaintTag> {
        self.tags.iter().find(|t| kinds.contains(&t.kind))
    }
}

/// Send vocabulary with argument roles: `(name, payload positions, port
/// positions)`. Positions index the argument list (receivers excluded),
/// which lines up for both method calls and associated-fn constructors.
pub const SEND_SIGS: &[(&str, &[usize], &[usize])] = &[
    ("send", &[1], &[0]),
    ("send_left", &[0], &[]),
    ("send_right", &[0], &[]),
    ("send_both", &[0, 1], &[]),
    ("and_send", &[1], &[0]),
    ("send_each", &[1], &[0]),
    ("push_send", &[1], &[0]),
];

/// Assert-family macros whose arguments are branch conditions.
const BRANCH_MACROS: &[&str] = &[
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "matches",
];

fn send_sig(name: &str) -> Option<&'static (&'static str, &'static [usize], &'static [usize])> {
    SEND_SIGS.iter().find(|(n, _, _)| *n == name)
}

/// One identity-taint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintFinding {
    /// 1-based line of the sink.
    pub line: usize,
    /// The origin tag that reached the sink.
    pub tag: TaintTag,
    /// What the sink is ("payload of `and_send`", "branch condition", …).
    pub sink: String,
}

/// Runs the identity-taint analysis over every function in `file`
/// (functions inside `impl … Topology for …` blocks are exempt: a
/// topology *definition* realises wiring). `wiring_accessors` are the
/// method/fn names whose results carry [`TaintKind::Wiring`].
#[must_use]
pub fn identity_taint(file: &File, wiring_accessors: &[&str]) -> Vec<TaintFinding> {
    let mut findings = Vec::new();
    crate::ast::for_each_fn(file, &mut |f, trait_ctx| {
        if trait_ctx == Some("Topology") {
            return;
        }
        let Some(body) = &f.body else { return };
        let mut walker = TaintWalker {
            accessors: wiring_accessors,
            findings: Vec::new(),
        };
        let mut env = Env::default();
        for p in &f.params {
            if p.ty == ["PortId"] {
                for name in &p.names {
                    if name != "self" {
                        env.vars.insert(
                            name.clone(),
                            Taint::of(
                                TaintKind::PortIdentity,
                                format!("`{name}: PortId` parameter"),
                                p.line,
                            ),
                        );
                    }
                }
            }
        }
        walker.block(body, &mut env);
        findings.append(&mut walker.findings);
    });
    findings.sort_by(|a, b| (a.line, &a.sink).cmp(&(b.line, &b.sink)));
    findings.dedup();
    findings
}

/// The evaluated facts about one expression.
#[derive(Debug, Clone, Default)]
struct Val {
    taint: Taint,
    /// Whether the value is (or may be) a `&mut step.to_left` /
    /// `.to_right` borrow — a send slot awaiting a `*out = payload`.
    slot_borrow: bool,
}

impl Val {
    fn tainted(taint: Taint) -> Val {
        Val {
            taint,
            slot_borrow: false,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct Env {
    /// Taint of locals and one-level `self.field` paths.
    vars: BTreeMap<String, Taint>,
    /// Locals currently bound to send-slot borrows.
    slots: BTreeSet<String>,
}

struct TaintWalker<'a> {
    accessors: &'a [&'a str],
    findings: Vec<TaintFinding>,
}

impl TaintWalker<'_> {
    fn sink(&mut self, line: usize, taint: &Taint, kinds: &[TaintKind], sink: String) {
        if let Some(tag) = taint.first_of(kinds) {
            self.findings.push(TaintFinding {
                line,
                tag: tag.clone(),
                sink,
            });
        }
    }

    /// Payload sinks reject every taint kind; branch and port-routing
    /// sinks reject wiring and processor-index taint only (algorithms
    /// legitimately branch on and route by their own port values).
    fn check_send_call(&mut self, name: &str, line: usize, args: &[Val]) {
        let Some((_, payloads, ports)) = send_sig(name) else {
            return;
        };
        for &i in *payloads {
            if let Some(v) = args.get(i) {
                self.sink(
                    line,
                    &v.taint,
                    &[
                        TaintKind::ProcessorIndex,
                        TaintKind::Wiring,
                        TaintKind::PortIdentity,
                    ],
                    format!("the payload of `{name}`"),
                );
            }
        }
        for &i in *ports {
            if let Some(v) = args.get(i) {
                self.sink(
                    line,
                    &v.taint,
                    &[TaintKind::ProcessorIndex, TaintKind::Wiring],
                    format!("the port argument of `{name}`"),
                );
            }
        }
    }

    fn branch_sink(&mut self, line: usize, taint: &Taint, what: &str) {
        self.sink(
            line,
            taint,
            &[TaintKind::ProcessorIndex, TaintKind::Wiring],
            what.to_string(),
        );
    }

    /// Walks a block; the value is the last statement's expression value
    /// (an approximation: trailing-semicolon information is not kept).
    fn block(&mut self, b: &Block, env: &mut Env) -> Val {
        let mut last = Val::default();
        for stmt in &b.stmts {
            last = self.stmt(stmt, env);
        }
        last
    }

    fn stmt(&mut self, s: &Stmt, env: &mut Env) -> Val {
        match s {
            Stmt::Let {
                bound,
                init,
                else_block,
                ..
            } => {
                let v = init.as_ref().map(|e| self.expr(e, env)).unwrap_or_default();
                for name in bound {
                    env.vars.insert(name.clone(), v.taint.clone());
                    if v.slot_borrow {
                        env.slots.insert(name.clone());
                    } else {
                        env.slots.remove(name);
                    }
                }
                if let Some(eb) = else_block {
                    self.block(eb, &mut env.clone());
                }
                Val::default()
            }
            Stmt::Expr(e) => self.expr(e, env),
            Stmt::Item(_) => Val::default(),
        }
    }

    /// Flattens `a.b.c` / `self.f` lvalues into an env key.
    fn lvalue_key(e: &Expr) -> Option<String> {
        match e {
            Expr::Path { segs, .. } if segs.len() == 1 => Some(segs[0].clone()),
            Expr::Field { base, name, .. } => Self::lvalue_key(base).map(|b| format!("{b}.{name}")),
            _ => None,
        }
    }

    #[allow(clippy::too_many_lines)]
    fn expr(&mut self, e: &Expr, env: &mut Env) -> Val {
        match e {
            Expr::Lit { .. } | Expr::Opaque { .. } => Val::default(),
            Expr::Path { segs, line } => {
                if segs.len() == 1 {
                    if let Some(key) = segs.first() {
                        if let Some(t) = env.vars.get(key) {
                            return Val {
                                taint: t.clone(),
                                slot_borrow: env.slots.contains(key),
                            };
                        }
                    }
                    Val::default()
                } else if segs.iter().any(|s| s == "PortId") {
                    // `PortId::LEFT`, `PortId::RIGHT`, … are identity
                    // constants: concrete labels, not semantic directions.
                    Val::tainted(Taint::of(
                        TaintKind::PortIdentity,
                        format!("`{}`", segs.join("::")),
                        *line,
                    ))
                } else {
                    // Multi-segment paths: look up a dotted self-field
                    // spelling is not possible here; constants untainted.
                    Val::default()
                }
            }
            Expr::Field { base, name, line } => {
                let _ = line;
                if let Some(key) = Self::lvalue_key(e) {
                    if let Some(t) = env.vars.get(&key) {
                        let mut v = Val::tainted(t.clone());
                        v.slot_borrow = env.slots.contains(&key);
                        // Also fold in the base's own taint.
                        let b = self.expr(base, env);
                        v.taint.union(&b.taint);
                        return v;
                    }
                }
                let mut v = self.expr(base, env);
                v.slot_borrow = false;
                let _ = name;
                v
            }
            Expr::Index { base, index, .. } => {
                // Index position never propagates: `pending[from.index()]`
                // does not taint the loaded element.
                let _ = self.expr(index, env);
                let mut v = self.expr(base, env);
                v.slot_borrow = false;
                v
            }
            Expr::Unary { op, expr, line } => {
                let _ = line;
                let mut v = self.expr(expr, env);
                if *op == '&' {
                    if let Expr::Field { name, .. } = expr.as_ref() {
                        if name == "to_left" || name == "to_right" {
                            v.slot_borrow = true;
                        }
                    }
                }
                v
            }
            Expr::Binary { lhs, rhs, .. } => {
                let mut v = self.expr(lhs, env);
                let r = self.expr(rhs, env);
                v.taint.union(&r.taint);
                v.slot_borrow = false;
                v
            }
            Expr::Try { expr, .. } => self.expr(expr, env),
            Expr::Tuple { items, .. } => {
                let mut t = Taint::none();
                let mut slot = false;
                for item in items {
                    let v = self.expr(item, env);
                    t.union(&v.taint);
                    slot |= v.slot_borrow;
                }
                Val {
                    taint: t,
                    slot_borrow: slot,
                }
            }
            Expr::Struct { fields, line, .. } => {
                let mut t = Taint::none();
                for (fname, value) in fields {
                    let v = self.expr(value, env);
                    // Building a step literally with a payload in a send
                    // slot is a send site.
                    if (fname == "to_left" || fname == "to_right") && !value.is_path(&["None"]) {
                        self.sink(
                            *line,
                            &v.taint,
                            &[
                                TaintKind::ProcessorIndex,
                                TaintKind::Wiring,
                                TaintKind::PortIdentity,
                            ],
                            format!("the `{fname}` send slot"),
                        );
                    }
                    t.union(&v.taint);
                }
                Val::tainted(t)
            }
            Expr::Assign {
                lhs,
                rhs,
                compound,
                line,
            } => {
                let v = self.expr(rhs, env);
                // Send-slot sinks: `step.to_left = payload` and
                // `*out = payload` through a tracked borrow.
                match lhs.as_ref() {
                    Expr::Field { name, .. }
                        if (name == "to_left" || name == "to_right") && !rhs.is_path(&["None"]) =>
                    {
                        self.sink(
                            *line,
                            &v.taint,
                            &[
                                TaintKind::ProcessorIndex,
                                TaintKind::Wiring,
                                TaintKind::PortIdentity,
                            ],
                            format!("the `{name}` send slot"),
                        );
                    }
                    Expr::Unary {
                        op: '*',
                        expr: inner,
                        ..
                    } => {
                        if let Expr::Path { segs, .. } = inner.as_ref() {
                            if segs.len() == 1 && env.slots.contains(&segs[0]) {
                                self.sink(
                                    *line,
                                    &v.taint,
                                    &[
                                        TaintKind::ProcessorIndex,
                                        TaintKind::Wiring,
                                        TaintKind::PortIdentity,
                                    ],
                                    "a borrowed send slot".to_string(),
                                );
                            }
                        }
                    }
                    _ => {}
                }
                if let Some(key) = Self::lvalue_key(lhs) {
                    if *compound {
                        let mut t = env.vars.get(&key).cloned().unwrap_or_default();
                        t.union(&v.taint);
                        env.vars.insert(key, t);
                    } else {
                        env.vars.insert(key.clone(), v.taint.clone());
                        if v.slot_borrow {
                            env.slots.insert(key);
                        } else {
                            env.slots.remove(&key);
                        }
                    }
                } else {
                    let _ = self.expr(lhs, env);
                }
                Val::default()
            }
            Expr::Call { callee, args, line } => {
                let vals: Vec<Val> = args.iter().map(|a| self.expr(a, env)).collect();
                let mut taint = Taint::none();
                for v in &vals {
                    taint.union(&v.taint);
                }
                if let Expr::Path { segs, .. } = callee.as_ref() {
                    if let Some(last) = segs.last() {
                        if self.accessors.contains(&last.as_str()) {
                            taint.union(&Taint::of(
                                TaintKind::Wiring,
                                format!("`{last}(..)` wiring read"),
                                *line,
                            ));
                        }
                        self.check_send_call(last, *line, &vals);
                        self.bind_from_config_closures(last, args, env);
                    }
                    if segs.iter().any(|s| s == "PortId") {
                        taint.union(&Taint::of(
                            TaintKind::PortIdentity,
                            format!("`{}`", segs.join("::")),
                            *line,
                        ));
                    }
                } else {
                    let v = self.expr(callee, env);
                    taint.union(&v.taint);
                }
                Val::tainted(taint)
            }
            Expr::MethodCall {
                recv,
                method,
                args,
                line,
            } => {
                let r = self.expr(recv, env);
                let vals: Vec<Val> = args.iter().map(|a| self.expr(a, env)).collect();
                self.check_send_call(method, *line, &vals);
                self.bind_from_config_closures(method, args, env);
                if self.accessors.contains(&method.as_str()) {
                    return Val::tainted(Taint::of(
                        TaintKind::Wiring,
                        format!("`{method}(..)` wiring read"),
                        *line,
                    ));
                }
                let mut taint = r.taint;
                for v in &vals {
                    taint.union(&v.taint);
                }
                Val::tainted(taint)
            }
            Expr::Closure { params, body, .. } => {
                let mut inner = env.clone();
                for p in params {
                    if p.ty == ["PortId"] {
                        for name in &p.names {
                            inner.vars.insert(
                                name.clone(),
                                Taint::of(
                                    TaintKind::PortIdentity,
                                    format!("`{name}: PortId` closure parameter"),
                                    p.line,
                                ),
                            );
                        }
                    } else {
                        for name in &p.names {
                            inner.vars.remove(name);
                            inner.slots.remove(name);
                        }
                    }
                }
                let v = self.expr(body, &mut inner);
                Val::tainted(v.taint)
            }
            Expr::If {
                cond,
                bound,
                then,
                els,
                line,
            } => {
                let c = self.expr(cond, env);
                self.branch_sink(*line, &c.taint, "a branch condition");
                let mut then_env = env.clone();
                for name in bound {
                    then_env.vars.insert(name.clone(), c.taint.clone());
                }
                let mut v = self.block(then, &mut then_env);
                if let Some(e) = els {
                    let other = self.expr(e, &mut env.clone());
                    v.taint.union(&other.taint);
                    v.slot_borrow |= other.slot_borrow;
                }
                // Merge branch effects conservatively: keep the pre-branch
                // env and fold in then-branch var taints.
                for (k, t) in then_env.vars {
                    env.vars.entry(k).or_default().union(&t);
                }
                v
            }
            Expr::Match {
                scrutinee,
                arms,
                line,
            } => {
                let s = self.expr(scrutinee, env);
                self.branch_sink(*line, &s.taint, "a match scrutinee");
                let mut v = Val::default();
                for arm in arms {
                    let mut arm_env = env.clone();
                    for name in &arm.bound {
                        arm_env.vars.insert(name.clone(), s.taint.clone());
                    }
                    if let Some(g) = &arm.guard {
                        let gv = self.expr(g, &mut arm_env);
                        self.branch_sink(g.line(), &gv.taint, "a match guard");
                    }
                    let body = self.expr(&arm.body, &mut arm_env);
                    v.taint.union(&body.taint);
                    v.slot_borrow |= body.slot_borrow;
                    for (k, t) in arm_env.vars {
                        env.vars.entry(k).or_default().union(&t);
                    }
                }
                v
            }
            Expr::While {
                cond, bound, body, ..
            } => {
                // Two passes so taint assigned late in the body reaches
                // earlier uses; findings dedup at the end.
                for _ in 0..2 {
                    let c = self.expr(cond, env);
                    self.branch_sink(e.line(), &c.taint, "a loop condition");
                    let mut body_env = env.clone();
                    for name in bound {
                        body_env.vars.insert(name.clone(), c.taint.clone());
                    }
                    self.block(body, &mut body_env);
                    for (k, t) in body_env.vars {
                        env.vars.entry(k).or_default().union(&t);
                    }
                }
                Val::default()
            }
            Expr::Loop { body, .. } => {
                for _ in 0..2 {
                    let mut body_env = env.clone();
                    self.block(body, &mut body_env);
                    for (k, t) in body_env.vars {
                        env.vars.entry(k).or_default().union(&t);
                    }
                }
                Val::default()
            }
            Expr::For {
                bound, iter, body, ..
            } => {
                let it = self.expr(iter, env);
                for _ in 0..2 {
                    let mut body_env = env.clone();
                    for name in bound {
                        body_env.vars.insert(name.clone(), it.taint.clone());
                    }
                    self.block(body, &mut body_env);
                    for (k, t) in body_env.vars {
                        env.vars.entry(k).or_default().union(&t);
                    }
                }
                Val::default()
            }
            Expr::Block(b) => self.block(b, &mut env.clone()),
            Expr::Return { value, .. } | Expr::Jump { value, .. } => {
                if let Some(v) = value {
                    self.expr(v, env);
                }
                Val::default()
            }
            Expr::Macro {
                name, args, line, ..
            } => {
                let mut taint = Taint::none();
                for a in args {
                    let v = self.expr(a, env);
                    taint.union(&v.taint);
                }
                if BRANCH_MACROS.contains(&name.as_str()) {
                    self.branch_sink(*line, &taint, &format!("a `{name}!` condition"));
                }
                Val::tainted(taint)
            }
        }
    }

    /// `from_config(config, |index, input| …)`: a closure argument whose
    /// first parameter is bound (not `_`-prefixed) seeds processor-index
    /// taint on that name for the closure body.
    fn bind_from_config_closures(&mut self, name: &str, args: &[Expr], env: &mut Env) {
        if name != "from_config" {
            return;
        }
        for arg in args {
            if let Expr::Closure { params, body, line } = arg {
                let Some(first) = params.first() else {
                    continue;
                };
                let mut inner = env.clone();
                let mut bound_any = false;
                for pname in &first.names {
                    if !pname.starts_with('_') {
                        inner.vars.insert(
                            pname.clone(),
                            Taint::of(
                                TaintKind::ProcessorIndex,
                                format!("`{pname}` construction-closure index"),
                                *line,
                            ),
                        );
                        bound_any = true;
                    }
                }
                if bound_any {
                    // Re-walk with the seed (the normal closure walk
                    // already ran without it; findings dedup).
                    let _ = self.expr(body, &mut inner);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Span dominance
// ---------------------------------------------------------------------------

/// One undominated send site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanFinding {
    /// 1-based line of the send site.
    pub line: usize,
    /// What the site is (`and_send`, `to_left` slot, …).
    pub site: String,
    /// The enclosing function's name.
    pub func: String,
}

/// Checks that every send site is covered by a span: chained under
/// `in_span`/`set_span`, preceded by a span establishment on *all* paths
/// (must-before), or followed by one on *some* path (may-after — the
/// repo's idiom applies the span to the accumulated action value at the
/// function's tail, which still stamps every send it carries).
#[must_use]
pub fn span_dominance(file: &File) -> Vec<SpanFinding> {
    let span_fns = span_fn_summaries(file);
    let mut findings = Vec::new();
    crate::ast::for_each_fn(file, &mut |f, _| {
        let Some(body) = &f.body else { return };
        let mut sw = SpanWalker {
            span_fns: &span_fns,
            sites: Vec::new(),
        };
        sw.forward_block(body, false, false);
        let entry_may = sw.backward_block(body, false);
        let _ = entry_may;
        for site in sw.sites {
            if !site.chained && !site.must_before && !site.may_after {
                findings.push(SpanFinding {
                    line: site.line,
                    site: site.what,
                    func: f.name.clone(),
                });
            }
        }
    });
    findings.sort_by(|a, b| (a.line, &a.site).cmp(&(b.line, &b.site)));
    findings.dedup();
    findings
}

/// Fixpoint over file-local functions: which function names establish a
/// span somewhere in their body (directly or by calling another local
/// span-establishing function). Coarse — names, not paths.
fn span_fn_summaries(file: &File) -> BTreeSet<String> {
    let mut fns: Vec<(&FnItem, &Block)> = Vec::new();
    crate::ast::for_each_fn(file, &mut |f, _| {
        if let Some(b) = &f.body {
            // SAFETY of lifetimes: for_each_fn hands out &'a references.
            fns.push((f, b));
        }
    });
    let mut known: BTreeSet<String> = BTreeSet::new();
    loop {
        let mut changed = false;
        for (f, body) in &fns {
            if known.contains(&f.name) {
                continue;
            }
            if block_establishes(body, &known) {
                known.insert(f.name.clone());
                changed = true;
            }
        }
        if !changed {
            return known;
        }
    }
}

/// Whether a span-establishing operation occurs anywhere in the block.
fn block_establishes(b: &Block, span_fns: &BTreeSet<String>) -> bool {
    b.stmts.iter().any(|s| stmt_establishes(s, span_fns))
}

fn stmt_establishes(s: &Stmt, span_fns: &BTreeSet<String>) -> bool {
    match s {
        Stmt::Let {
            init, else_block, ..
        } => {
            init.as_ref().is_some_and(|e| expr_establishes(e, span_fns))
                || else_block
                    .as_ref()
                    .is_some_and(|b| block_establishes(b, span_fns))
        }
        Stmt::Expr(e) => expr_establishes(e, span_fns),
        Stmt::Item(_) => false,
    }
}

fn arm_establishes(a: &Arm, span_fns: &BTreeSet<String>) -> bool {
    expr_establishes(&a.body, span_fns)
        || a.guard
            .as_ref()
            .is_some_and(|g| expr_establishes(g, span_fns))
}

fn expr_establishes(e: &Expr, span_fns: &BTreeSet<String>) -> bool {
    match e {
        Expr::MethodCall {
            recv, method, args, ..
        } => {
            method == "in_span"
                || method == "set_span"
                || span_fns.contains(method)
                || expr_establishes(recv, span_fns)
                || args.iter().any(|a| expr_establishes(a, span_fns))
        }
        Expr::Call { callee, args, .. } => {
            let named = match callee.as_ref() {
                Expr::Path { segs, .. } => segs
                    .last()
                    .is_some_and(|n| n == "in_span" || n == "set_span" || span_fns.contains(n)),
                _ => false,
            };
            named
                || expr_establishes(callee, span_fns)
                || args.iter().any(|a| expr_establishes(a, span_fns))
        }
        Expr::Assign { lhs, rhs, .. } => {
            matches!(lhs.as_ref(), Expr::Field { name, .. } if name == "span")
                || expr_establishes(rhs, span_fns)
        }
        Expr::If {
            cond, then, els, ..
        } => {
            expr_establishes(cond, span_fns)
                || block_establishes(then, span_fns)
                || els.as_ref().is_some_and(|e| expr_establishes(e, span_fns))
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            expr_establishes(scrutinee, span_fns)
                || arms.iter().any(|a| arm_establishes(a, span_fns))
        }
        Expr::While { cond, body, .. } => {
            expr_establishes(cond, span_fns) || block_establishes(body, span_fns)
        }
        Expr::Loop { body, .. } => block_establishes(body, span_fns),
        Expr::For { iter, body, .. } => {
            expr_establishes(iter, span_fns) || block_establishes(body, span_fns)
        }
        Expr::Block(b) => block_establishes(b, span_fns),
        Expr::Closure { body, .. } => expr_establishes(body, span_fns),
        Expr::Return { value, .. } | Expr::Jump { value, .. } => value
            .as_ref()
            .is_some_and(|v| expr_establishes(v, span_fns)),
        Expr::Unary { expr, .. } | Expr::Try { expr, .. } => expr_establishes(expr, span_fns),
        Expr::Binary { lhs, rhs, .. } => {
            expr_establishes(lhs, span_fns) || expr_establishes(rhs, span_fns)
        }
        Expr::Field { base, .. } => expr_establishes(base, span_fns),
        Expr::Index { base, index, .. } => {
            expr_establishes(base, span_fns) || expr_establishes(index, span_fns)
        }
        Expr::Tuple { items, .. } => items.iter().any(|i| expr_establishes(i, span_fns)),
        Expr::Struct { fields, .. } => fields.iter().any(|(_, v)| expr_establishes(v, span_fns)),
        Expr::Macro {
            args, raw_idents, ..
        } => {
            args.iter().any(|a| expr_establishes(a, span_fns))
                || raw_idents.iter().any(|i| i == "in_span" || i == "set_span")
        }
        Expr::Path { .. } | Expr::Lit { .. } | Expr::Opaque { .. } => false,
    }
}

#[derive(Debug)]
struct Site {
    line: usize,
    what: String,
    chained: bool,
    must_before: bool,
    may_after: bool,
}

struct SpanWalker<'a> {
    span_fns: &'a BTreeSet<String>,
    sites: Vec<Site>,
}

impl SpanWalker<'_> {
    /// Whether an expression is a send site head; returns its label.
    fn call_site(name: &str) -> Option<String> {
        send_sig(name).map(|(n, _, _)| format!("`{n}`"))
    }

    // --- forward must-analysis (records sites) -----------------------------

    /// Walks the block in order; `must` = span established on all paths
    /// so far; `chained` = inside the receiver of an `in_span`/`set_span`
    /// chain. Returns the must-state at block exit.
    fn forward_block(&mut self, b: &Block, mut must: bool, chained: bool) -> bool {
        for stmt in &b.stmts {
            must = self.forward_stmt(stmt, must, chained);
        }
        must
    }

    fn forward_stmt(&mut self, s: &Stmt, must: bool, chained: bool) -> bool {
        match s {
            Stmt::Let {
                init, else_block, ..
            } => {
                let mut out = must;
                if let Some(e) = init {
                    out = self.forward_expr(e, out, chained);
                }
                if let Some(b) = else_block {
                    self.forward_block(b, out, chained);
                }
                out
            }
            Stmt::Expr(e) => self.forward_expr(e, must, chained),
            Stmt::Item(_) => must,
        }
    }

    fn record(&mut self, line: usize, what: String, must: bool, chained: bool) {
        self.sites.push(Site {
            line,
            what,
            chained,
            must_before: must,
            may_after: false,
        });
    }

    #[allow(clippy::too_many_lines)]
    fn forward_expr(&mut self, e: &Expr, must: bool, chained: bool) -> bool {
        match e {
            Expr::MethodCall {
                recv,
                method,
                args,
                line,
            } => {
                let establishes = method == "in_span"
                    || method == "set_span"
                    || self.span_fns.contains(method.as_str());
                // The receiver chain of an in_span call is span-covered.
                let mut m = self.forward_expr(recv, must, chained || establishes);
                for a in args {
                    m = self.forward_expr(a, m, chained);
                }
                if let Some(what) = Self::call_site(method) {
                    self.record(*line, what, must, chained);
                }
                m || establishes
            }
            Expr::Call { callee, args, line } => {
                let mut m = must;
                let mut establishes = false;
                if let Expr::Path { segs, .. } = callee.as_ref() {
                    if let Some(last) = segs.last() {
                        establishes = last == "in_span"
                            || last == "set_span"
                            || self.span_fns.contains(last.as_str());
                        if let Some(what) = Self::call_site(last) {
                            self.record(*line, what, must, chained);
                        }
                    }
                } else {
                    m = self.forward_expr(callee, m, chained);
                }
                for a in args {
                    m = self.forward_expr(a, m, chained || establishes);
                }
                m || establishes
            }
            Expr::Assign { lhs, rhs, line, .. } => {
                let m = self.forward_expr(rhs, must, chained);
                match lhs.as_ref() {
                    Expr::Field { name, .. } if name == "to_left" || name == "to_right" => {
                        if !rhs.is_path(&["None"]) {
                            self.record(*line, format!("`{name}` slot assignment"), must, chained);
                        }
                        m
                    }
                    Expr::Field { name, .. } if name == "span" => true,
                    _ => m,
                }
            }
            Expr::Struct { fields, line, .. } => {
                let mut m = must;
                for (fname, value) in fields {
                    m = self.forward_expr(value, m, chained);
                    if (fname == "to_left" || fname == "to_right") && !value.is_path(&["None"]) {
                        self.record(*line, format!("`{fname}` slot literal"), must, chained);
                    }
                    if fname == "span" && !value.is_path(&["None"]) {
                        m = true;
                    }
                }
                m
            }
            Expr::Unary { op, expr, line } => {
                let m = self.forward_expr(expr, must, chained);
                if *op == '&' {
                    if let Expr::Field { name, .. } = expr.as_ref() {
                        if name == "to_left" || name == "to_right" {
                            self.record(
                                *line,
                                format!("`&mut …{name}` slot borrow"),
                                must,
                                chained,
                            );
                        }
                    }
                }
                m
            }
            Expr::If {
                cond, then, els, ..
            } => {
                let m0 = self.forward_expr(cond, must, chained);
                let mt = self.forward_block(then, m0, chained);
                let me = match els {
                    Some(e) => self.forward_expr(e, m0, chained),
                    None => m0,
                };
                mt && me
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                let m0 = self.forward_expr(scrutinee, must, chained);
                let mut out = !arms.is_empty();
                for arm in arms {
                    let mut m = m0;
                    if let Some(g) = &arm.guard {
                        m = self.forward_expr(g, m, chained);
                    }
                    out &= self.forward_expr(&arm.body, m, chained);
                }
                out || m0
            }
            Expr::While { cond, body, .. } => {
                let m = self.forward_expr(cond, must, chained);
                self.forward_block(body, m, chained);
                m // the body may run zero times
            }
            Expr::Loop { body, .. } => {
                self.forward_block(body, must, chained);
                must
            }
            Expr::For { iter, body, .. } => {
                let m = self.forward_expr(iter, must, chained);
                self.forward_block(body, m, chained);
                m
            }
            Expr::Block(b) => self.forward_block(b, must, chained),
            Expr::Closure { body, .. } => {
                // A closure body runs at an unknown time; analyze it with
                // the surrounding must-state (send-emitting closures in
                // this codebase are immediate `map`-style helpers).
                self.forward_expr(body, must, chained);
                must
            }
            Expr::Return { value, .. } | Expr::Jump { value, .. } => {
                if let Some(v) = value {
                    self.forward_expr(v, must, chained);
                }
                must
            }
            Expr::Binary { lhs, rhs, .. } => {
                let m = self.forward_expr(lhs, must, chained);
                self.forward_expr(rhs, m, chained)
            }
            Expr::Try { expr, .. } => self.forward_expr(expr, must, chained),
            Expr::Field { base, .. } => self.forward_expr(base, must, chained),
            Expr::Index { base, index, .. } => {
                let m = self.forward_expr(base, must, chained);
                self.forward_expr(index, m, chained)
            }
            Expr::Tuple { items, .. } => {
                let mut m = must;
                for i in items {
                    m = self.forward_expr(i, m, chained);
                }
                m
            }
            Expr::Macro { args, .. } => {
                let mut m = must;
                for a in args {
                    m = self.forward_expr(a, m, chained);
                }
                m
            }
            Expr::Path { .. } | Expr::Lit { .. } | Expr::Opaque { .. } => must,
        }
    }

    // --- backward may-analysis (fills may_after) ---------------------------

    /// Folds the block backward; `after` = a span establishment is
    /// reachable on some path after the block. Returns the may-state at
    /// block entry. Sites inside statement `i` get the state holding
    /// *after* statement `i` (statement granularity; same-statement
    /// chains are covered by the `chained` flag).
    fn backward_block(&mut self, b: &Block, after: bool) -> bool {
        let mut state = after;
        for stmt in b.stmts.iter().rev() {
            state = self.backward_stmt(stmt, state);
        }
        state
    }

    fn backward_stmt(&mut self, s: &Stmt, after: bool) -> bool {
        match s {
            Stmt::Let {
                init, else_block, ..
            } => {
                if let Some(b) = else_block {
                    self.backward_block(b, false);
                }
                match init {
                    Some(e) => self.backward_expr(e, after),
                    None => after,
                }
            }
            Stmt::Expr(e) => self.backward_expr(e, after),
            Stmt::Item(_) => after,
        }
    }

    /// Marks every site inside `e` (matching by line + label) with
    /// `may_after = after`-or-later establishment, and returns the
    /// may-state before `e`.
    fn backward_expr(&mut self, e: &Expr, after: bool) -> bool {
        match e {
            // Control-flow nodes get real path treatment.
            Expr::If {
                cond, then, els, ..
            } => {
                let t = self.backward_block(then, after);
                let el = match els {
                    Some(e) => self.backward_expr(e, after),
                    None => after,
                };
                self.backward_expr(cond, t || el)
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                let mut any = arms.is_empty() && after;
                for arm in arms {
                    let mut a = self.backward_expr(&arm.body, after);
                    if let Some(g) = &arm.guard {
                        a = self.backward_expr(g, a);
                    }
                    any |= a;
                }
                self.backward_expr(scrutinee, any)
            }
            Expr::While { cond, body, .. } => {
                // A site in the body may reach establishment after the
                // loop, later in the body, or in the *next* iteration.
                let loopback = block_establishes(body, self.span_fns);
                self.backward_block(body, after || loopback);
                self.backward_expr(cond, after || loopback)
            }
            Expr::Loop { body, .. } => {
                let loopback = block_establishes(body, self.span_fns);
                self.backward_block(body, after || loopback)
            }
            Expr::For { iter, body, .. } => {
                let loopback = block_establishes(body, self.span_fns);
                self.backward_block(body, after || loopback);
                self.backward_expr(iter, after || loopback)
            }
            Expr::Block(b) => self.backward_block(b, after),
            Expr::Return { value, .. } | Expr::Jump { value, .. } => {
                // Paths end here: what counts is establishment inside the
                // returned expression itself.
                match value {
                    Some(v) => self.backward_expr(v, false),
                    None => false,
                }
            }
            // Every other node: mark contained sites with `after`, and
            // report whether the node itself establishes.
            _ => {
                self.mark_sites(e, after);
                after || expr_establishes_shallow(e, self.span_fns)
            }
        }
    }

    /// Marks every recorded site whose (line, label) occurs within `e`.
    fn mark_sites(&mut self, e: &Expr, after: bool) {
        let mut found: Vec<(usize, String)> = Vec::new();
        collect_site_keys(e, &mut found);
        for (line, what) in found {
            for site in &mut self.sites {
                if site.line == line && site.what == what {
                    site.may_after |= after;
                }
            }
        }
    }
}

/// `expr_establishes` without descending into control-flow bodies (those
/// are handled path-sensitively by the backward walk) — but chains,
/// calls and assignments count.
fn expr_establishes_shallow(e: &Expr, span_fns: &BTreeSet<String>) -> bool {
    expr_establishes(e, span_fns)
}

/// Collects `(line, label)` keys of the send sites syntactically inside
/// `e`, mirroring the labels the forward walk records.
fn collect_site_keys(e: &Expr, out: &mut Vec<(usize, String)>) {
    match e {
        Expr::MethodCall {
            recv,
            args,
            method,
            line,
        } => {
            if let Some(what) = SpanWalker::call_site(method) {
                out.push((*line, what));
            }
            collect_site_keys(recv, out);
            for a in args {
                collect_site_keys(a, out);
            }
        }
        Expr::Call { callee, args, line } => {
            if let Expr::Path { segs, .. } = callee.as_ref() {
                if let Some(last) = segs.last() {
                    if let Some(what) = SpanWalker::call_site(last) {
                        out.push((*line, what));
                    }
                }
            }
            collect_site_keys(callee, out);
            for a in args {
                collect_site_keys(a, out);
            }
        }
        Expr::Assign { lhs, rhs, line, .. } => {
            if let Expr::Field { name, .. } = lhs.as_ref() {
                if (name == "to_left" || name == "to_right") && !rhs.is_path(&["None"]) {
                    out.push((*line, format!("`{name}` slot assignment")));
                }
            }
            collect_site_keys(lhs, out);
            collect_site_keys(rhs, out);
        }
        Expr::Struct { fields, line, .. } => {
            for (fname, value) in fields {
                if (fname == "to_left" || fname == "to_right") && !value.is_path(&["None"]) {
                    out.push((*line, format!("`{fname}` slot literal")));
                }
                collect_site_keys(value, out);
            }
        }
        Expr::Unary { op, expr, line } => {
            if *op == '&' {
                if let Expr::Field { name, .. } = expr.as_ref() {
                    if name == "to_left" || name == "to_right" {
                        out.push((*line, format!("`&mut …{name}` slot borrow")));
                    }
                }
            }
            collect_site_keys(expr, out);
        }
        Expr::If {
            cond, then, els, ..
        } => {
            collect_site_keys(cond, out);
            for s in &then.stmts {
                collect_stmt_site_keys(s, out);
            }
            if let Some(e) = els {
                collect_site_keys(e, out);
            }
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            collect_site_keys(scrutinee, out);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    collect_site_keys(g, out);
                }
                collect_site_keys(&arm.body, out);
            }
        }
        Expr::While { cond, body, .. } => {
            collect_site_keys(cond, out);
            for s in &body.stmts {
                collect_stmt_site_keys(s, out);
            }
        }
        Expr::Loop { body, .. } => {
            for s in &body.stmts {
                collect_stmt_site_keys(s, out);
            }
        }
        Expr::For { iter, body, .. } => {
            collect_site_keys(iter, out);
            for s in &body.stmts {
                collect_stmt_site_keys(s, out);
            }
        }
        Expr::Block(b) => {
            for s in &b.stmts {
                collect_stmt_site_keys(s, out);
            }
        }
        Expr::Closure { body, .. } => collect_site_keys(body, out),
        Expr::Return { value, .. } | Expr::Jump { value, .. } => {
            if let Some(v) = value {
                collect_site_keys(v, out);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            collect_site_keys(lhs, out);
            collect_site_keys(rhs, out);
        }
        Expr::Try { expr, .. } => collect_site_keys(expr, out),
        Expr::Field { base, .. } => collect_site_keys(base, out),
        Expr::Index { base, index, .. } => {
            collect_site_keys(base, out);
            collect_site_keys(index, out);
        }
        Expr::Tuple { items, .. } => {
            for i in items {
                collect_site_keys(i, out);
            }
        }
        Expr::Macro { args, .. } => {
            for a in args {
                collect_site_keys(a, out);
            }
        }
        Expr::Path { .. } | Expr::Lit { .. } | Expr::Opaque { .. } => {}
    }
}

fn collect_stmt_site_keys(s: &Stmt, out: &mut Vec<(usize, String)>) {
    match s {
        Stmt::Let {
            init, else_block, ..
        } => {
            if let Some(e) = init {
                collect_site_keys(e, out);
            }
            if let Some(b) = else_block {
                for s in &b.stmts {
                    collect_stmt_site_keys(s, out);
                }
            }
        }
        Stmt::Expr(e) => collect_site_keys(e, out),
        Stmt::Item(_) => {}
    }
}

// ---------------------------------------------------------------------------
// Lock discipline
// ---------------------------------------------------------------------------

/// One critical-section violation in the hub.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockFinding {
    /// 1-based line of the offending operation.
    pub line: usize,
    /// The operation (`record_send`, `events.push`, …).
    pub op: String,
    /// The enclosing function.
    pub func: String,
    /// Whether the op ran outside any guard (vs. split across two).
    pub outside: bool,
}

/// Meter-write method names (writes to the net-side `CostMeter`).
const METER_OPS: &[&str] = &["record_send", "record_delivery", "record_drop"];

/// Checks the S21 invariant syntactically: in every hub function, each
/// meter write, causal stamp (`next_seq` update, `wall_stamps` push) and
/// trace append (`events` push) must occur inside a lock-guard region
/// (`let g = ….lock()` / `….into_inner()` to end of enclosing block, or
/// a `MutexGuard`/`&mut HubInner` parameter), and all ops of one
/// function must share a single region.
#[must_use]
pub fn lock_discipline(file: &File) -> Vec<LockFinding> {
    let mut findings = Vec::new();
    crate::ast::for_each_fn(file, &mut |f, _| {
        let Some(body) = &f.body else { return };
        let param_guarded = f.params.iter().any(param_is_guard);
        let mut lw = LockWalker {
            func: f.name.clone(),
            active: if param_guarded {
                vec![("<caller's guard>".to_string(), 0)]
            } else {
                Vec::new()
            },
            ops: Vec::new(),
            findings: Vec::new(),
        };
        lw.block(body);
        // All in-guard ops must share one region.
        let regions: BTreeSet<usize> = lw.ops.iter().map(|(_, _, region)| *region).collect();
        if regions.len() > 1 {
            let first = lw.ops.first().map_or(0, |(_, _, r)| *r);
            for (line, op, region) in &lw.ops {
                if *region != first {
                    lw.findings.push(LockFinding {
                        line: *line,
                        op: op.clone(),
                        func: f.name.clone(),
                        outside: false,
                    });
                }
            }
        }
        findings.append(&mut lw.findings);
    });
    findings.sort_by(|a, b| (a.line, &a.op).cmp(&(b.line, &b.op)));
    findings.dedup();
    findings
}

fn param_is_guard(p: &Param) -> bool {
    p.ty.iter().any(|t| t == "MutexGuard" || t == "HubInner")
}

struct LockWalker {
    func: String,
    /// Active guard regions: (binding name, region id = let line).
    active: Vec<(String, usize)>,
    /// In-guard ops seen: (line, op, region id).
    ops: Vec<(usize, String, usize)>,
    findings: Vec<LockFinding>,
}

impl LockWalker {
    fn block(&mut self, b: &Block) {
        let mark = self.active.len();
        for stmt in &b.stmts {
            match stmt {
                Stmt::Let {
                    bound,
                    init,
                    else_block,
                    line,
                } => {
                    if let Some(e) = init {
                        self.expr(e);
                        if expr_takes_lock(e) {
                            for name in bound {
                                self.active.push((name.clone(), *line));
                            }
                            if bound.is_empty() {
                                self.active.push(("<anonymous>".to_string(), *line));
                            }
                        }
                    }
                    if let Some(eb) = else_block {
                        self.block(eb);
                    }
                }
                Stmt::Expr(e) => self.expr(e),
                Stmt::Item(_) => {}
            }
        }
        self.active.truncate(mark);
    }

    fn op(&mut self, line: usize, op: String) {
        match self.active.last() {
            Some((_, region)) => self.ops.push((line, op, *region)),
            None => self.findings.push(LockFinding {
                line,
                op,
                func: self.func.clone(),
                outside: true,
            }),
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::MethodCall {
                recv,
                method,
                args,
                line,
            } => {
                if METER_OPS.contains(&method.as_str()) {
                    self.op(*line, format!("meter write `{method}`"));
                } else if method == "push" {
                    if let Some(field) = stamp_field(recv) {
                        self.op(*line, format!("`{field}.push` append"));
                    }
                }
                self.expr(recv);
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Assign { lhs, rhs, line, .. } => {
                if let Some(field) = stamp_field(lhs) {
                    if field == "next_seq" {
                        self.op(*line, "`next_seq` stamp update".to_string());
                    }
                }
                self.expr(lhs);
                self.expr(rhs);
            }
            Expr::If {
                cond, then, els, ..
            } => {
                self.expr(cond);
                self.block(then);
                if let Some(e) = els {
                    self.expr(e);
                }
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                self.expr(scrutinee);
                for arm in arms {
                    if let Some(g) = &arm.guard {
                        self.expr(g);
                    }
                    self.expr(&arm.body);
                }
            }
            Expr::While { cond, body, .. } => {
                self.expr(cond);
                self.block(body);
            }
            Expr::Loop { body, .. } => self.block(body),
            Expr::For { iter, body, .. } => {
                self.expr(iter);
                self.block(body);
            }
            Expr::Block(b) => self.block(b),
            Expr::Closure { body, .. } => self.expr(body),
            Expr::Call { callee, args, .. } => {
                self.expr(callee);
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Return { value, .. } | Expr::Jump { value, .. } => {
                if let Some(v) = value {
                    self.expr(v);
                }
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            Expr::Unary { expr, .. } | Expr::Try { expr, .. } => self.expr(expr),
            Expr::Field { base, .. } => self.expr(base),
            Expr::Index { base, index, .. } => {
                self.expr(base);
                self.expr(index);
            }
            Expr::Tuple { items, .. } => {
                for i in items {
                    self.expr(i);
                }
            }
            Expr::Struct { fields, .. } => {
                for (_, v) in fields {
                    self.expr(v);
                }
            }
            Expr::Macro { args, .. } => {
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Path { .. } | Expr::Lit { .. } | Expr::Opaque { .. } => {}
        }
    }
}

/// Whether the expression takes the hub lock (contains a `.lock()`,
/// `.try_lock()`, `.lock_timed(…)` or `.into_inner()` call — the last is
/// exclusive ownership, a critical section of one; `lock_timed` is the
/// S26 profiled acquisition, which returns the guard in a tuple).
fn expr_takes_lock(e: &Expr) -> bool {
    match e {
        Expr::MethodCall {
            recv, method, args, ..
        } => {
            method == "lock"
                || method == "try_lock"
                || method == "lock_timed"
                || method == "into_inner"
                || expr_takes_lock(recv)
                || args.iter().any(expr_takes_lock)
        }
        Expr::Call { callee, args, .. } => {
            expr_takes_lock(callee) || args.iter().any(expr_takes_lock)
        }
        Expr::Try { expr, .. } | Expr::Unary { expr, .. } => expr_takes_lock(expr),
        Expr::Field { base, .. } => expr_takes_lock(base),
        Expr::Tuple { items, .. } => items.iter().any(expr_takes_lock),
        _ => false,
    }
}

/// The stamp/append field a method-receiver or lvalue names, if it is one
/// of the hub's critical-section fields.
fn stamp_field(e: &Expr) -> Option<&'static str> {
    if let Expr::Field { name, .. } = e {
        for f in ["wall_stamps", "events", "next_seq"] {
            if name == f {
                return Some(f);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_source;

    fn taints(src: &str) -> Vec<TaintFinding> {
        identity_taint(
            &parse_source(src),
            &[
                "neighbor",
                "neighbor_port",
                "with_switched",
                "wiring_digest",
                "round_digest",
                "active_edges",
                "components",
                "is_active",
                "local_schedule",
            ],
        )
    }

    #[test]
    fn portid_parameter_into_payload_is_flagged() {
        let f = taints(
            r#"fn on_message_port(&mut self, from: PortId, msg: u8) -> Actions<u8> {
                let echo = from.index() as u64;
                Actions::idle().and_send(from, echo).in_span("echo", 0)
            }"#,
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].tag.kind, TaintKind::PortIdentity);
        assert!(f[0].sink.contains("payload"), "{f:?}");
    }

    #[test]
    fn sending_along_a_port_value_is_sanctioned() {
        let f = taints(
            r#"fn reply(&mut self, from: PortId) -> Actions<u8> {
                Actions::idle().and_send(from, 1).in_span("reply", 0)
            }"#,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn wiring_read_flowing_into_a_branch_is_flagged() {
        let f = taints(
            r#"fn plan(&mut self, topo: &T) {
                let oriented = topo.wiring_digest();
                if oriented > 0 { self.mode = 1; }
            }"#,
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].tag.kind, TaintKind::Wiring);
        assert!(f[0].tag.origin.contains("wiring_digest"), "{f:?}");
    }

    #[test]
    fn index_position_does_not_propagate() {
        let f = taints(
            r#"fn store(&mut self, from: PortId, msg: u8) {
                self.pending[from.index()].push(msg);
                let head = self.pending[from.index()];
                self.out = head;
            }"#,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn from_config_bound_index_taints_the_closure_body() {
        let f = taints(
            r#"fn run(config: &C) {
                let e = Engine::from_config(config, |i, input| {
                    if i > 0 { Proc::a(input) } else { Proc::b(input) }
                });
            }"#,
        );
        assert!(
            f.iter().any(|t| t.tag.kind == TaintKind::ProcessorIndex),
            "{f:?}"
        );
    }

    #[test]
    fn taint_flows_through_let_chains_and_constructors() {
        let f = taints(
            r#"fn leak(&mut self, from: PortId) -> Step<Msg> {
                let label = from;
                let wrapped = Msg::Tag(label);
                let mut step = Step::idle();
                step.to_left = Some(wrapped);
                step.in_span("leak", 0)
            }"#,
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].sink.contains("to_left"), "{f:?}");
    }

    #[test]
    fn deref_assign_through_slot_borrow_is_a_payload_sink() {
        let f = taints(
            r#"fn emit(&mut self, step: &mut Step<u8>, from: PortId) {
                let out = match dir {
                    Port::Left => &mut step.to_right,
                    Port::Right => &mut step.to_left,
                };
                *out = Some(from);
            }"#,
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].sink.contains("send slot"), "{f:?}");
    }

    #[test]
    fn assert_macros_are_branch_sinks_for_wiring() {
        let f = taints(
            r#"fn check(topo: &T) {
                let d = topo.round_digest(0);
                debug_assert!(d != 0);
            }"#,
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].sink.contains("debug_assert"), "{f:?}");
    }

    #[test]
    fn topology_impls_are_exempt_from_taint_seeding() {
        let f = taints(
            r#"impl Topology for Wheel {
                fn neighbor_port(&self, i: usize, p: PortId) -> (usize, PortId) {
                    let (to, back) = self.inner.neighbor_port(i, p);
                    if to > i { (to, back) } else { (i, p) }
                }
            }"#,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    fn spans(src: &str) -> Vec<SpanFinding> {
        span_dominance(&parse_source(src))
    }

    #[test]
    fn chained_in_span_covers_the_whole_chain() {
        let f = spans(
            r#"fn step(&mut self) -> Step<u8, u8> {
                Step::send_left(1).in_span("probe", 0)
            }"#,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn bare_send_with_no_span_anywhere_is_flagged() {
        let f = spans("fn step(&mut self) -> Step<u8, u8> { Step::send_left(1) }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].func, "step");
    }

    #[test]
    fn span_at_tail_covers_earlier_sends_via_may_after() {
        let f = spans(
            r#"fn advance(&mut self) -> Actions<u8> {
                let mut actions = Actions::idle();
                for p in ports {
                    actions = actions.and_send(p, 1);
                }
                actions.in_span("flood", self.round)
            }"#,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn span_assignment_after_send_in_loop_body_covers_it() {
        let f = spans(
            r#"fn advance(&mut self) -> Actions<u8> {
                let mut actions = Actions::idle();
                while self.round < self.limit {
                    actions = actions.and_send(port, 1);
                    actions.span = next.span;
                }
                actions
            }"#,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn conditional_span_on_only_one_path_before_send_is_flagged() {
        let f = spans(
            r#"fn step(&mut self) -> Step<u8, u8> {
                let mut s = Step::idle();
                if self.noisy { s = s.in_span("noisy", 0); }
                s.to_left = Some(1);
                s
            }"#,
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].site.contains("to_left"), "{f:?}");
    }

    #[test]
    fn must_before_on_all_paths_covers_later_sends() {
        let f = spans(
            r#"fn step(&mut self) -> Step<u8, u8> {
                let mut s = Step::idle().in_span("inner", self.cycle);
                s.to_left = Some(1);
                s.to_right = Some(2);
                s
            }"#,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn local_fn_span_summaries_cover_calls() {
        let f = spans(
            r#"
            fn flood(&mut self, round: u64) -> Actions<u8> {
                Actions::idle().and_send(p, 1).in_span("flood", round)
            }
            fn on_start(&mut self) -> Actions<u8> {
                let a = self.flood(0);
                a.push_send(p, 2);
                a
            }
            "#,
        );
        // `flood` establishes, so on_start's push_send is must-covered.
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn conditional_tail_span_keeps_marker_sends_covered() {
        // The orientation idiom: sends happen mid-fn, the span is applied
        // conditionally at the tail (may-after).
        let f = spans(
            r#"fn rounds_step(&mut self, phase: Option<&'static str>) -> Step<M, u8> {
                let mut step = Step::idle();
                step.to_left = Some(marker);
                match phase {
                    Some(phase) => step.in_span(phase, self.round),
                    None => step,
                }
            }"#,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    fn locks(src: &str) -> Vec<LockFinding> {
        lock_discipline(&parse_source(src))
    }

    #[test]
    fn hub_ops_inside_one_guard_are_clean() {
        let f = locks(
            r#"fn route_send(&self, time: u64, bits: u64) {
                let mut inner = self.lock();
                inner.next_seq += 1;
                inner.meter.record_send(time, bits);
                inner.wall_stamps.push(now);
                inner.events.push(ev);
            }"#,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn meter_write_outside_the_lock_is_flagged() {
        let f = locks(
            r#"fn route_send(&self, time: u64, bits: u64) {
                self.meter_shadow.record_send(time, bits);
                let mut inner = self.lock();
                inner.events.push(ev);
            }"#,
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].outside);
        assert!(f[0].op.contains("record_send"), "{f:?}");
    }

    #[test]
    fn ops_split_across_two_guard_regions_are_flagged() {
        let f = locks(
            r#"fn route_send(&self, time: u64, bits: u64) {
                {
                    let mut inner = self.lock();
                    inner.meter.record_send(time, bits);
                }
                {
                    let mut inner = self.lock();
                    inner.events.push(ev);
                }
            }"#,
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(!f[0].outside);
        assert!(f[0].op.contains("events"), "{f:?}");
    }

    #[test]
    fn guard_typed_parameters_count_as_in_guard() {
        let f = locks(
            r#"fn check_done(&self, inner: &mut HubInner) {
                inner.events.push(ev);
                inner.wall_stamps.push(now);
            }"#,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn into_inner_is_exclusive_ownership() {
        let f = locks(
            r#"fn into_parts(self) -> (Meter, Vec<Ev>) {
                let inner = self.inner.into_inner().expect("poisoned");
                (inner.meter, inner.events)
            }"#,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn profiled_lock_timed_acquisition_opens_a_guard_region() {
        // The S26 hub returns (guard, hold-timer) as a tuple; the
        // destructured binding must count as one guard region.
        let f = locks(
            r#"fn route_send(&self, time: u64, bits: u64) {
                let (mut inner, _hold) = self.lock_timed(op);
                inner.next_seq += 1;
                inner.meter.record_send(time, bits);
                inner.events.push(ev);
            }"#,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn try_lock_acquisition_opens_a_guard_region() {
        let f = locks(
            r#"fn drain(&self) {
                let Ok(mut inner) = self.inner.try_lock() else { return };
                inner.events.push(ev);
            }"#,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn stamp_push_outside_any_guard_is_flagged() {
        let f = locks(
            r#"fn halt(&self) {
                self.shadow.wall_stamps.push(now);
            }"#,
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].op.contains("wall_stamps"), "{f:?}");
    }
}
