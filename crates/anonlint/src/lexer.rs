//! A minimal hand-rolled Rust lexer — just enough structure for the lint
//! pass: identifiers, punctuation, literals and (crucially) comments, each
//! tagged with its 1-based source line.
//!
//! The lexer deliberately does **not** parse Rust; the lints work on the
//! token stream plus brace depth. What it must get right is the token
//! *boundaries* real Rust uses, so that lint-relevant identifiers inside
//! strings, doc comments or `//` comments are never mistaken for code:
//!
//! * line comments (`//`, `///`, `//!`) and nested block comments;
//! * string literals with escapes, raw strings `r#"…"#`, byte strings;
//! * char literals versus lifetimes (`'a'` versus `'a`);
//! * raw identifiers (`r#async`).

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (raw identifiers are unescaped: `r#async`
    /// lexes as `async`).
    Ident,
    /// A lifetime such as `'a` (without the quote).
    Lifetime,
    /// Any numeric literal, uninterpreted.
    Number,
    /// A string, raw-string, byte-string or char literal (text excludes
    /// the delimiters and is *not* unescaped).
    Literal,
    /// A `//` line comment, including `///` and `//!` doc comments (text
    /// excludes the leading slashes).
    LineComment,
    /// A `/* … */` block comment, nesting handled (text excludes the
    /// delimiters).
    BlockComment,
    /// A single punctuation character (`{`, `}`, `(`, `|`, `#`, …).
    Punct,
}

/// One lexeme with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The lexeme class.
    pub kind: TokenKind,
    /// The lexeme text (see [`TokenKind`] for what is included).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// Whether this token is the identifier `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// Lexes `source` into tokens. Never fails: unterminated literals consume
/// to end of input (the lint pass runs on code that already compiles, so
/// this only matters for robustness on garbage input).
#[must_use]
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    tokens: Vec<Token>,
}

impl Lexer {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: usize) {
        self.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek() {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek_at(1) == Some('/') => self.line_comment(line),
                '/' if self.peek_at(1) == Some('*') => self.block_comment(line),
                '"' => self.string_literal(line),
                'b' if self.peek_at(1) == Some('"') => {
                    self.bump();
                    self.string_literal(line);
                }
                'r' if self.raw_string_ahead(1) => self.raw_string(line, 1),
                'b' if self.peek_at(1) == Some('r') && self.raw_string_ahead(2) => {
                    self.bump();
                    self.raw_string(line, 1)
                }
                'r' if self.peek_at(1) == Some('#')
                    && self.peek_at(2).is_some_and(is_ident_start) =>
                {
                    // Raw identifier: skip `r#`, lex the identifier proper.
                    self.bump();
                    self.bump();
                    self.ident(line);
                }
                '\'' => self.quote(line),
                c if c.is_ascii_digit() => self.number(line),
                c if is_ident_start(c) => self.ident(line),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
        self.tokens
    }

    fn line_comment(&mut self, line: usize) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::LineComment, text, line);
    }

    fn block_comment(&mut self, line: usize) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    text.push_str("/*");
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                    if depth > 0 {
                        text.push_str("*/");
                    }
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.push(TokenKind::BlockComment, text, line);
    }

    fn string_literal(&mut self, line: usize) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => {
                    text.push('\\');
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                c => text.push(c),
            }
        }
        self.push(TokenKind::Literal, text, line);
    }

    /// Whether `r`/`br` at the current position starts a raw string
    /// (`r"`, `r#"`, `r##"`, …), looking from `offset` past the `r`.
    fn raw_string_ahead(&self, offset: usize) -> bool {
        let mut i = offset;
        while self.peek_at(i) == Some('#') {
            i += 1;
        }
        self.peek_at(i) == Some('"')
    }

    fn raw_string(&mut self, line: usize, offset_past_r: usize) {
        debug_assert_eq!(offset_past_r, 1);
        self.bump(); // the `r`
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut text = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                // A closing quote must be followed by `hashes` hash marks.
                for i in 0..hashes {
                    if self.peek_at(i) != Some('#') {
                        text.push('"');
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            text.push(c);
        }
        self.push(TokenKind::Literal, text, line);
    }

    /// A single quote: either a char literal (`'x'`, `'\n'`) or a
    /// lifetime (`'a`, `'static`).
    fn quote(&mut self, line: usize) {
        self.bump(); // the quote
        match self.peek() {
            Some('\\') => {
                // Escaped char literal.
                let mut text = String::new();
                text.push('\\');
                self.bump();
                if let Some(esc) = self.bump() {
                    text.push(esc);
                    if esc == 'u' {
                        while let Some(c) = self.peek() {
                            if c == '\'' {
                                break;
                            }
                            text.push(c);
                            self.bump();
                        }
                    }
                }
                self.bump(); // closing quote
                self.push(TokenKind::Literal, text, line);
            }
            Some(c) if is_ident_start(c) => {
                // `'a'` is a char literal; `'a` (no closing quote right
                // after one ident char) is a lifetime — but `'ab'` is
                // still a (weird) char token sequence we won't meet in
                // compiling code. Scan the identifier, then look for a
                // closing quote.
                let mut text = String::new();
                while let Some(c) = self.peek() {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(c);
                    self.bump();
                }
                if self.peek() == Some('\'') {
                    self.bump();
                    self.push(TokenKind::Literal, text, line);
                } else {
                    self.push(TokenKind::Lifetime, text, line);
                }
            }
            Some(c) => {
                // Non-identifier char literal: `'+'`, `' '`, …
                let mut text = String::new();
                text.push(c);
                self.bump();
                if self.peek() == Some('\'') {
                    self.bump();
                }
                self.push(TokenKind::Literal, text, line);
            }
            None => {}
        }
    }

    fn number(&mut self, line: usize) {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            // Good enough for lint purposes: swallows ints, floats, type
            // suffixes, hex/oct/bin and `_` separators. `1.max(2)` keeps
            // `max` out of the number because `.m` is not a digit/ident
            // continuation pair we accept after a `.`.
            let in_number = c.is_ascii_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek_at(1).is_some_and(|d| d.is_ascii_digit()));
            if !in_number {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::Number, text, line);
    }

    fn ident(&mut self, line: usize) {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::Ident, text, line);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::{lex, TokenKind};

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_keep_code_identifiers_out_of_the_stream() {
        let toks = kinds("let x = 1; // unwrap() here is prose\n/* unsafe */ y");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::LineComment && t.contains("unwrap")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::BlockComment && t.contains("unsafe")));
        // No Ident token named unwrap/unsafe leaked out.
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && (t == "unwrap" || t == "unsafe")));
    }

    #[test]
    fn strings_and_chars_do_not_leak_identifiers() {
        let toks = kinds(r#"call("unwrap()", 'u', '\n', "esc \" quote")"#);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Literal)
                .count(),
            4
        );
    }

    #[test]
    fn raw_strings_with_hashes_terminate_correctly() {
        let toks = kinds(r###"let s = r#"has "quotes" and unsafe"#; next"###);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t.contains("quotes")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "next"));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unsafe"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "a"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t == "x"));
    }

    #[test]
    fn raw_identifiers_unescape() {
        let toks = kinds("use crate::r#async::AsyncEngine;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "async"));
    }

    #[test]
    fn line_numbers_are_one_based_and_advance() {
        let toks = lex("a\nb\n  c");
        assert_eq!(
            toks.iter()
                .map(|t| (t.text.as_str(), t.line))
                .collect::<Vec<_>>(),
            vec![("a", 1), ("b", 2), ("c", 3)]
        );
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ code");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::BlockComment)
                .count(),
            1
        );
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "code"));
    }
}
