// Seeded violation for the file-level span heuristic: the send
// vocabulary appears (a fn *named* send_left) with no span anywhere.
// The AST tier sees there is no send call site, so span-dominance stays
// silent -- this fixture is exactly the gap between the two tiers.
pub fn send_left(buf: &mut Vec<Msg>, m: Msg) {
    buf.push(m);
}
