// Seeded violation: a bare unwrap on the runtime path, with no invariant
// message and no justification.
pub fn head(q: &mut VecDeque<u8>) -> u8 {
    q.pop_front().unwrap()
}
