// Seeded violation: a suppression with no `-- reason`.
// anonlint: allow(no-unwrap-in-runtime)
pub fn head(q: &mut VecDeque<u8>) -> Option<u8> {
    q.pop_front()
}
