// Seeded violation for the path-sensitive span check: the file stamps a
// span (so the file-level span-coverage heuristic is satisfied), but the
// second fn has a send site no span ever covers.
pub fn covered(phase: u32) -> Step<Msg> {
    Step::send_left(Msg::Probe).in_span("probe", phase)
}

pub fn bare() -> Step<Msg> {
    Step::send_right(Msg::Probe)
}
