// Seeded violation: algorithm code driving the raw fabric queue, which
// bypasses the cost meter entirely.
pub fn sneak(fabric: &mut LinkFabric<u8>, m: Msg) {
    fabric.queues[0].push_back(m);
}
