// Seeded violation: a well-formed suppression whose lint no longer fires
// on the lines it covers (the unwrap it once excused is gone).
// anonlint: allow(no-unwrap-in-runtime) -- head checked by the caller
pub fn head(q: &mut VecDeque<u8>) -> Option<u8> {
    q.pop_front()
}
