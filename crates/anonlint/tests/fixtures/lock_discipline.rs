// Seeded violation: a hub meter write outside any lock-guard region. The
// S21 invariant requires the meter, causal stamps and trace to advance
// inside one critical section; this fn never takes the lock at all.
impl Hub {
    pub fn sneak(&self, bits: u64) {
        self.inner.meter.record_send(bits);
    }
}
