// Seeded violation: algorithm code naming a wiring accessor. The token
// tier catches the name itself even though the result flows nowhere (so
// the dataflow tier stays silent -- no sink is reached).
pub fn peek(t: &RingTopology) -> u64 {
    t.wiring_digest()
}
