// Seeded violation: a ring-algorithm variant that leaks its port label
// through a local into a send payload. No denylisted name appears, so
// only the dataflow tier can see it: `who` copies the `PortId` parameter
// and rides out inside the message.
pub fn step(&mut self, from: PortId) -> Step<Msg> {
    let who = from;
    Step::send(from, Msg::Claim(who)).in_span("claim", 0)
}
