//! The repo lints itself: `anonlint` must report zero findings over the
//! workspace (the committed baseline is empty). A finding here means new
//! code broke a model invariant — fix it or add a justified
//! `anonlint: allow(...)` suppression.

use std::path::Path;

#[test]
fn workspace_has_zero_findings() {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/anonlint sits two levels below the repo root");
    assert!(
        repo_root.join("crates/sim/src").is_dir(),
        "resolved repo root {repo_root:?} looks wrong"
    );
    let findings = anonring_anonlint::lint_repo(repo_root).expect("workspace sources readable");
    assert!(
        findings.is_empty(),
        "anonlint found {} violation(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
