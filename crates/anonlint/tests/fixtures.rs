//! Seeded-violation corpus: every lint has a fixture under
//! `tests/fixtures/` that triggers exactly that lint and nothing else.
//! The corpus doubles as a regression net for false positives — a fixture
//! lighting up a *second* lint means an analysis got too eager.

use std::collections::BTreeSet;
use std::path::Path;

use anonring_anonlint::{lint_source, Lint, Scope};

/// `(fixture file, path to lint it as, scope, the one lint it seeds)`.
/// The lint-as path matters: scope rules key off it (the lock-discipline
/// fixture must present as a hub file so the hub's meter exemption and
/// the critical-section analysis both apply).
const CASES: &[(&str, &str, Scope, Lint)] = &[
    (
        "anonymity_breach.rs",
        "crates/core/src/algorithms/fixture.rs",
        Scope::Algorithms,
        Lint::AnonymityBreach,
    ),
    (
        "identity_taint.rs",
        "crates/core/src/algorithms/fixture.rs",
        Scope::Algorithms,
        Lint::IdentityTaint,
    ),
    (
        "unmetered_send.rs",
        "crates/core/src/algorithms/fixture.rs",
        Scope::Algorithms,
        Lint::UnmeteredSend,
    ),
    (
        "span_coverage.rs",
        "crates/core/src/algorithms/fixture.rs",
        Scope::Algorithms,
        Lint::SpanCoverage,
    ),
    (
        "span_dominance.rs",
        "crates/core/src/algorithms/fixture.rs",
        Scope::Algorithms,
        Lint::SpanDominance,
    ),
    (
        "no_unwrap.rs",
        "crates/sim/src/fixture.rs",
        Scope::Runtime,
        Lint::NoUnwrapInRuntime,
    ),
    (
        "forbid_unsafe.rs",
        "crates/sim/src/fixture.rs",
        Scope::Runtime,
        Lint::ForbidUnsafe,
    ),
    (
        "lock_discipline.rs",
        "crates/net/src/hub_fixture.rs",
        Scope::NetDriver,
        Lint::LockDiscipline,
    ),
    (
        "malformed_suppression.rs",
        "crates/sim/src/fixture.rs",
        Scope::Runtime,
        Lint::MalformedSuppression,
    ),
    (
        "stale_suppression.rs",
        "crates/sim/src/fixture.rs",
        Scope::Runtime,
        Lint::StaleSuppression,
    ),
];

fn read_fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).expect("fixture file readable")
}

#[test]
fn every_fixture_triggers_exactly_its_lint() {
    for (fixture, as_path, scope, lint) in CASES {
        let findings = lint_source(as_path, &read_fixture(fixture), *scope);
        assert!(
            !findings.is_empty(),
            "{fixture}: the seeded violation was not detected"
        );
        let fired: BTreeSet<&str> = findings.iter().map(|f| f.lint.name()).collect();
        assert_eq!(
            fired,
            BTreeSet::from([lint.name()]),
            "{fixture}: expected exactly `{}`, got {findings:#?}",
            lint.name()
        );
        for f in &findings {
            assert!(!f.snippet.is_empty(), "{fixture}: finding lost its snippet");
        }
    }
}

#[test]
fn the_corpus_covers_every_lint() {
    let covered: BTreeSet<&str> = CASES.iter().map(|(_, _, _, l)| l.name()).collect();
    let all: BTreeSet<&str> = Lint::ALL.into_iter().map(Lint::name).collect();
    assert_eq!(
        covered, all,
        "every lint in the catalog needs a seeded-violation fixture"
    );
}
