//! The paper's theorems, checked end to end at integration level.

use anonring::core::algorithms::compute::compute_sync;
use anonring::core::algorithms::sync_input_dist::SyncInputDist;
use anonring::core::bounds;
use anonring::core::computability::{
    states_agree, theorem_3_2_witness, theorem_3_3_witness, theorem_3_5_witness,
};
use anonring::core::functions::{
    computable_on_any_ring, computable_on_oriented_ring, FnRing, Sum, Xor,
};
use anonring::core::lower_bounds::witnesses::{
    and_async_pair, constant_gap_async_pair, orientation_async_pair, orientation_sync_pair,
    start_sync_pair, xor_sync_pair, xor_sync_pair_arbitrary,
};
use anonring::sim::neighborhood;

#[test]
fn theorem_3_2_ring_size_must_be_known() {
    // For any would-be size-oblivious algorithm deciding within t cycles,
    // the witness ring contains processors indistinguishable (to radius t)
    // from both a pure-0 and a pure-1 ring — so it must answer 0 and 1 on
    // one input.
    for t in [1usize, 2, 4, 8] {
        let (config, w0, w1) = theorem_3_2_witness(&[0], &[1], t);
        assert_eq!(config.n(), 2 * (2 * t + 1));
        assert_ne!(
            neighborhood(&config, w0, t),
            neighborhood(&config, w1, t),
            "the two witnesses differ from each other"
        );
    }
}

#[test]
fn theorem_3_3_sum_needs_exact_size() {
    let (a, b) = theorem_3_3_witness(6, 10);
    // Indistinguishable at every radius...
    for k in 0..12 {
        assert_eq!(neighborhood(&a, 0, k), neighborhood(&b, 0, k));
    }
    // ...yet SUM must answer differently.
    let sa = compute_sync(&a, &Sum).unwrap().value();
    let sb = compute_sync(&b, &Sum).unwrap().value();
    assert_eq!(sa, 6);
    assert_eq!(sb, 10);
}

#[test]
fn theorem_3_4_characterizes_computability() {
    // Fully symmetric functions: computable everywhere.
    assert!(computable_on_any_ring(&Xor, 6));
    assert!(computable_on_any_ring(&Sum, 6));
    // Chiral but cyclic-invariant: oriented rings only.
    let least_rotation = FnRing::new("least-rotation", |xs: &[u64]| {
        let n = xs.len();
        (0..n)
            .map(|r| (0..n).fold(0u64, |acc, i| (acc << 1) | (xs[(r + i) % n] & 1)))
            .min()
            .unwrap_or(0)
    });
    assert!(computable_on_oriented_ring(&least_rotation, 6));
    assert!(!computable_on_any_ring(&least_rotation, 6));
    // Position-dependent: nowhere.
    let first = FnRing::new("first", |xs: &[u64]| xs[0]);
    assert!(!computable_on_oriented_ring(&first, 5));
}

#[test]
fn theorem_3_5_even_rings_cannot_be_oriented() {
    // The two-half-rings witness: every mirror pair is indistinguishable
    // at every radius yet faces opposite ways, so no deterministic
    // algorithm can give them the opposite outputs orientation requires.
    for half in [2usize, 4, 6] {
        let config = theorem_3_5_witness(half);
        let n = 2 * half;
        for i in 0..half {
            let j = n - 1 - i;
            assert_eq!(neighborhood(&config, i, n), neighborhood(&config, j, n));
            assert_ne!(
                config.topology().orientation(i),
                config.topology().orientation(j)
            );
        }
    }
}

#[test]
fn lemma_3_1_engine_level() {
    // Same window ⇒ same states for k cycles, on the real Figure 2
    // machine.
    let c1 = anonring::sim::RingConfig::oriented_bits("011011011").unwrap();
    let c2 = anonring::sim::RingConfig::oriented_bits("011011000").unwrap();
    assert_eq!(neighborhood(&c1, 2, 2), neighborhood(&c2, 2, 2));
    assert!(states_agree(&c1, 2, &c2, 2, 2, |_, &b| SyncInputDist::new(
        9, b
    )));
}

#[test]
fn all_async_fooling_pairs_verify_and_bound_quadratically() {
    for n in [8usize, 16, 33] {
        let and_pair = and_async_pair(n);
        and_pair.verify_structure().unwrap();
        assert!(and_pair.bound() >= (n * n / 2 - n) as f64);
        for case in [false, true] {
            let gap = constant_gap_async_pair(n, case);
            gap.verify_structure().unwrap();
        }
    }
    for n in [9usize, 21, 41] {
        let pair = orientation_async_pair(n);
        pair.verify_structure().unwrap();
        assert_eq!(pair.bound(), (n * (n / 4 + usize::from(n % 4 >= 2))) as f64);
    }
}

#[test]
fn all_sync_fooling_pairs_verify_and_bound_superlinearly() {
    for k in [3usize, 4, 5] {
        let n = 3u64.pow(k as u32);
        let xor = xor_sync_pair(k);
        xor.verify_structure().unwrap();
        assert!(xor.bound() >= bounds::xor_sync_lower(n));
        let orient = orientation_sync_pair(k);
        orient.verify_structure().unwrap();
        assert!(orient.bound() >= bounds::orientation_sync_lower(n));
    }
    for k in [3usize, 4] {
        let pair = start_sync_pair(k);
        pair.verify_structure().unwrap();
        assert!(pair.bound() >= bounds::start_sync_sync_lower(4 * 3u64.pow(k as u32)));
    }
}

#[test]
fn arbitrary_n_bounds_grow_superlinearly() {
    // The certified (measured-beta) bounds at arbitrary sizes scale like
    // the paper's Ω(n log n): more than linearly in n.
    let b200 = xor_sync_pair_arbitrary(200, 8).unwrap().bound();
    let b800 = xor_sync_pair_arbitrary(800, 8).unwrap().bound();
    assert!(
        b800 / b200 > 3.0,
        "4x the ring should cost more than 3x: {b200} -> {b800}"
    );
}

#[test]
fn xor_really_costs_n_log_n_while_and_costs_n() {
    // The paper's punchline table: AND is linear synchronously, XOR is
    // not.
    let mut and_ratio = 0.0f64;
    let mut xor_ratio = 0.0f64;
    for k in [3usize, 5] {
        let n = 3usize.pow(k as u32);
        let pair = xor_sync_pair(k);
        let xor_cost = compute_sync(&pair.r1, &Xor).unwrap().messages;
        let and_cost = anonring::core::algorithms::sync_and::run(&pair.r1)
            .unwrap()
            .messages
            .max(1);
        if k == 3 {
            and_ratio = and_cost as f64 / n as f64;
            xor_ratio = xor_cost as f64 / n as f64;
        } else {
            // Per-processor AND cost stays flat; per-processor XOR cost
            // grows with log n.
            assert!((and_cost as f64 / n as f64) <= and_ratio * 1.5 + 2.0);
            assert!((xor_cost as f64 / n as f64) > xor_ratio * 1.3);
        }
    }
}

#[test]
fn every_paper_bound_formula_is_respected_by_its_algorithm() {
    // One sweep tying bounds.rs to reality.
    let n = 81usize;
    let inputs: Vec<u8> = (0..n).map(|i| ((i * 37) % 5 == 0) as u8).collect();
    let config = anonring::sim::RingConfig::oriented(inputs);
    let fig2 = anonring::core::algorithms::sync_input_dist::run(&config).unwrap();
    assert!((fig2.messages as f64) <= bounds::sync_input_dist_messages(n as u64) + n as f64);
    assert!((fig2.cycles as f64) <= bounds::sync_input_dist_cycles(n as u64));

    let topo = anonring::sim::RingTopology::from_bits(
        &(0..n)
            .map(|i| ((i * 29) % 3 == 0) as u8)
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let fig4 = anonring::core::algorithms::orientation::run(&topo).unwrap();
    assert!((fig4.messages as f64) <= bounds::orientation_messages(n as u64) + 4.0 * n as f64);

    let wake = anonring::sim::WakeSchedule::random(n, 5);
    let oriented = anonring::sim::RingTopology::oriented(n).unwrap();
    let fig5 = anonring::core::algorithms::start_sync::run(&oriented, &wake).unwrap();
    assert!((fig5.messages as f64) <= bounds::start_sync_messages(n as u64) + 2.0 * n as f64);
}
