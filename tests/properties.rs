//! Property-based tests (proptest): the paper's invariants under random
//! configurations, orientations, schedules and wake-ups.

use anonring::core::algorithms::{
    async_input_dist, orientation, start_sync, start_sync_bits, sync_and, sync_input_dist,
};
use anonring::core::bounds;
use anonring::core::view::ground_truth_view;
use anonring::sim::r#async::{RandomScheduler, SynchronizingScheduler};
use anonring::sim::{
    joint_symmetry_index, neighborhood, Orientation, RingConfig, RingTopology, WakeSchedule,
};
use anonring::words::{Homomorphism, Word};
use proptest::prelude::*;

fn arb_config(max_n: usize) -> impl Strategy<Value = RingConfig<u8>> {
    (2..=max_n)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(0u8..=1, n),
                proptest::collection::vec(0u8..=1, n),
            )
        })
        .prop_map(|(inputs, orient)| {
            let orientations = orient.into_iter().map(Orientation::from_bit).collect();
            RingConfig::new(inputs, orientations).expect("valid ring")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// §4.1: input distribution reconstructs the exact ground-truth view
    /// of every processor under any random schedule, and costs n(n−1)
    /// messages for n ≥ 3.
    #[test]
    fn async_input_dist_is_exact(config in arb_config(12), seed in 0u64..1000) {
        let report = async_input_dist::run(&config, &mut RandomScheduler::new(seed)).unwrap();
        for (i, view) in report.outputs().iter().enumerate() {
            prop_assert_eq!(view, &ground_truth_view(&config, i));
        }
        if config.n() >= 3 {
            prop_assert_eq!(report.messages as usize, config.n() * (config.n() - 1));
        }
    }

    /// §4.2: AND is correct on arbitrary orientations within its bounds.
    #[test]
    fn sync_and_is_correct(config in arb_config(16)) {
        let want = u8::from(config.inputs().iter().all(|&b| b == 1));
        let report = sync_and::run(&config).unwrap();
        prop_assert!(report.outputs().iter().all(|&o| o == want));
        prop_assert!(report.messages <= 2 * config.n() as u64);
    }

    /// Figure 2 reconstructs every view on oriented rings, within the
    /// paper's message bound.
    #[test]
    fn figure_2_is_exact(inputs in proptest::collection::vec(0u8..=1, 2..32)) {
        let config = RingConfig::oriented(inputs);
        let report = sync_input_dist::run(&config).unwrap();
        for (i, view) in report.outputs().iter().enumerate() {
            prop_assert_eq!(view, &ground_truth_view(&config, i));
        }
        let n = config.n() as u64;
        prop_assert!(
            (report.messages as f64) <= bounds::sync_input_dist_messages(n) + n as f64
        );
    }

    /// Figure 4 always quasi-orients; odd rings always fully orient.
    #[test]
    fn figure_4_always_quasi_orients(bits in proptest::collection::vec(0u8..=1, 2..24)) {
        let topology = RingTopology::from_bits(&bits).unwrap();
        let report = orientation::run(&topology).unwrap();
        let after = topology.with_switched(report.outputs());
        prop_assert!(after.is_quasi_oriented());
        if bits.len() % 2 == 1 {
            prop_assert!(after.is_oriented());
        }
    }

    /// Figure 5 and the §4.2.4 bit variant synchronize every legal
    /// wake-up schedule: one global halting cycle, equal clocks.
    #[test]
    fn start_sync_always_synchronizes(n in 2usize..24, seed in 0u64..1000) {
        let wake = WakeSchedule::random(n, seed);
        let topology = RingTopology::oriented(n).unwrap();
        for report in [
            start_sync::run(&topology, &wake).unwrap(),
            start_sync_bits::run(&topology, &wake).unwrap(),
        ] {
            prop_assert!(report.halted_simultaneously());
            let first = report.outputs()[0];
            prop_assert!(report.outputs().iter().all(|&c| c == first));
        }
    }

    /// Lemma 3.1 at the engine level: if two processors have equal
    /// k-neighborhoods, the synchronizing-adversary run of input
    /// distribution sends them through indistinguishable histories for k
    /// cycles — verified indirectly: equal (n/2)-neighborhoods imply
    /// equal final outputs.
    #[test]
    fn equal_full_neighborhoods_mean_equal_outputs(config in arb_config(10)) {
        let k = config.n() / 2;
        let report =
            async_input_dist::run(&config, &mut SynchronizingScheduler).unwrap();
        for i in 0..config.n() {
            for j in 0..config.n() {
                if neighborhood(&config, i, k) == neighborhood(&config, j, k) {
                    prop_assert_eq!(
                        report.outputs()[i].entries(),
                        report.outputs()[j].entries(),
                        "processors {} and {}", i, j
                    );
                }
            }
        }
    }

    /// Theorem 6.3 as a property: for the uniform XOR homomorphism, every
    /// window of length ≤ n/9 repeats at least n/(27·len) times in h^k(0),
    /// and the joint index over the (h^k(0), h^k(1)) pair doubles that.
    #[test]
    fn theorem_6_3_repetitions(k in 3usize..6, len_pick in 0usize..3) {
        let h = Homomorphism::parse("011", "100");
        let w0 = h.iterate(&Word::parse("0"), k);
        let w1 = h.iterate(&Word::parse("1"), k);
        let n = w0.len();
        let len = [1usize, 3, 9][len_pick];
        prop_assume!(len <= n / 9);
        let min = w0.min_cyclic_occurrences(len);
        prop_assert!(min as f64 >= n as f64 / (27.0 * len as f64));
        let r0 = RingConfig::oriented(w0.as_slice().to_vec());
        let r1 = RingConfig::oriented(w1.as_slice().to_vec());
        let radius = (len - 1) / 2;
        let joint = joint_symmetry_index(&[r0, r1], radius);
        prop_assert!(joint as f64 >= 2.0 * n as f64 / (27.0 * len as f64));
    }

    /// The general synchronous compute route — Figure 4 then Figure 2 or
    /// the §4.2.2 alternating algorithm — is total and correct on random
    /// rings of either parity and any orientation mix.
    #[test]
    fn general_compute_is_total_and_correct(config in arb_config(12)) {
        use anonring::core::algorithms::compute::compute_sync_general;
        use anonring::core::functions::{Sum, Xor};
        let truth_sum: u64 = config.inputs().iter().map(|&b| u64::from(b)).sum();
        let sum = compute_sync_general(&config, &Sum).unwrap();
        prop_assert_eq!(sum.value(), truth_sum);
        let xor = compute_sync_general(&config, &Xor).unwrap();
        prop_assert_eq!(xor.value(), truth_sum % 2);
    }

    /// The unidirectional Figure 2 variant agrees with the bidirectional
    /// one on every oriented ring.
    #[test]
    fn unidirectional_variant_agrees(inputs in proptest::collection::vec(0u8..=1, 2..20)) {
        use anonring::core::algorithms::{sync_input_dist, sync_input_dist_uni};
        let config = RingConfig::oriented(inputs);
        let bi = sync_input_dist::run(&config).unwrap().into_outputs();
        let uni = sync_input_dist_uni::run(&config).unwrap().into_outputs();
        prop_assert_eq!(bi, uni);
    }

    /// Rotating a configuration permutes the views but changes no
    /// content: computability is exactly cyclic invariance (Theorem 3.4).
    #[test]
    fn rotation_permutes_views(inputs in proptest::collection::vec(0u8..=1, 2..16), r in 0usize..16) {
        let config = RingConfig::oriented(inputs);
        let n = config.n();
        let r = r % n;
        let rotated = config.rotated(r);
        let a = async_input_dist::run(&config, &mut SynchronizingScheduler).unwrap();
        let b = async_input_dist::run(&rotated, &mut SynchronizingScheduler).unwrap();
        for i in 0..n {
            prop_assert_eq!(&a.outputs()[(i + r) % n], &b.outputs()[i]);
        }
        // Total cost is rotation invariant too.
        prop_assert_eq!(a.messages, b.messages);
    }
}
