//! Cross-crate integration: the anonymous algorithms, the labelled
//! baselines and the simulators must all tell one consistent story.

use anonring::baselines::{hirschberg_sinclair, leader_collect};
use anonring::core::algorithms::compute::{compute_async, compute_sync, compute_sync_general};
use anonring::core::algorithms::{async_input_dist, orientation, sync_input_dist};
use anonring::core::functions::{And, Max, Or, RingFunction, Sum, Xor};
use anonring::core::view::ground_truth_view;
use anonring::sim::r#async::{AsyncEngine, RandomScheduler, SynchronizingScheduler};
use anonring::sim::synchronizer::Synchronized;
use anonring::sim::{Orientation, RingConfig};

fn pseudo_bits(n: usize, seed: u64) -> Vec<u8> {
    (0..n)
        .map(|i| (((i as u64).wrapping_mul(2654435761).wrapping_add(seed * 97)) >> 5 & 1) as u8)
        .collect()
}

fn pseudo_orientations(n: usize, seed: u64) -> Vec<Orientation> {
    pseudo_bits(n, seed ^ 0xABCD)
        .into_iter()
        .map(Orientation::from_bit)
        .collect()
}

#[test]
fn anonymous_and_labelled_input_distribution_agree() {
    for n in [5usize, 9, 16] {
        let inputs: Vec<u64> = (0..n as u64).map(|i| (i * 7919) % 1009).collect();
        let labelled = RingConfig::oriented(inputs.clone());
        let (dist, _, _) = leader_collect::elect_and_distribute(&labelled).unwrap();

        // The anonymous route learns the same multiset of inputs.
        let anon = RingConfig::oriented(inputs.clone());
        let report = async_input_dist::run(&anon, &mut SynchronizingScheduler).unwrap();
        for (i, view) in report.outputs().iter().enumerate() {
            let mut from_anon: Vec<u64> = view.inputs().copied().collect();
            let mut from_leader = dist.outputs()[i].inputs.clone();
            from_anon.sort_unstable();
            from_leader.sort_unstable();
            assert_eq!(from_anon, from_leader, "n={n} processor {i}");
        }
    }
}

#[test]
fn all_three_compute_routes_agree_on_arbitrary_rings() {
    for n in [5usize, 7, 9, 11] {
        for seed in 0..4u64 {
            let config =
                RingConfig::new(pseudo_bits(n, seed), pseudo_orientations(n, seed)).unwrap();
            for f in [&And as &dyn RingFunction, &Or, &Xor, &Sum, &Max] {
                let truth = {
                    let xs: Vec<u64> = config.inputs().iter().map(|&b| u64::from(b)).collect();
                    f.evaluate(&xs)
                };
                let via_async = compute_async(&config, f, &mut RandomScheduler::new(seed)).unwrap();
                assert_eq!(via_async.value(), truth, "{} async n={n}", f.name());
                let via_general = compute_sync_general(&config, f).unwrap();
                assert_eq!(via_general.value(), truth, "{} general n={n}", f.name());
                if config.topology().is_oriented() {
                    let via_sync = compute_sync(&config, f).unwrap();
                    assert_eq!(via_sync.value(), truth, "{} sync n={n}", f.name());
                }
            }
        }
    }
}

#[test]
fn figure_2_runs_unchanged_on_an_asynchronous_ring() {
    // §3: the synchronizer adapter executes a synchronous algorithm under
    // arbitrary asynchrony with identical outputs.
    for seed in 0..5u64 {
        let config = RingConfig::oriented(pseudo_bits(9, seed));
        let n = config.n();
        let sync_out = sync_input_dist::run(&config).unwrap().into_outputs();
        let mut engine = AsyncEngine::from_config(&config, |_, &b| {
            Synchronized::new(sync_input_dist::SyncInputDist::new(n, b))
        });
        let async_out = engine
            .run(&mut RandomScheduler::new(seed))
            .unwrap()
            .into_outputs();
        assert_eq!(sync_out, async_out, "seed {seed}");
    }
}

#[test]
fn orientation_then_figure_2_reconstructs_any_odd_ring() {
    for n in [5usize, 7, 9] {
        for seed in 0..6u64 {
            let config =
                RingConfig::new(pseudo_bits(n, seed), pseudo_orientations(n, seed * 3)).unwrap();
            // Orient, switch, distribute: afterwards every processor's
            // view matches the ground truth of the *switched* ring.
            let orient = orientation::run(config.topology()).unwrap();
            let switched = config.topology().with_switched(orient.outputs());
            assert!(switched.is_oriented(), "odd rings orient");
            let oriented_config =
                RingConfig::with_topology(config.inputs().to_vec(), switched).unwrap();
            let report = sync_input_dist::run(&oriented_config).unwrap();
            for (i, view) in report.outputs().iter().enumerate() {
                assert_eq!(
                    view,
                    &ground_truth_view(&oriented_config, i),
                    "n={n} seed={seed} processor {i}"
                );
            }
        }
    }
}

#[test]
fn election_beats_anonymity_only_with_distinct_labels() {
    // Corollary 5.2's moral: distinct labels -> O(n log n); repeated
    // inputs -> the anonymous lower bound applies and our universal
    // algorithm pays n(n-1).
    let n = 64usize;
    let distinct: Vec<u64> = (0..n as u64).map(|i| (i * 48271) % 999983).collect();
    let labelled = RingConfig::oriented(distinct);
    let hs = hirschberg_sinclair::run(&labelled, &mut SynchronizingScheduler).unwrap();

    let anonymous = RingConfig::oriented(vec![1u8; n]);
    let anon = async_input_dist::run(&anonymous, &mut SynchronizingScheduler).unwrap();
    assert!(hs.messages * 3 < anon.messages);
    assert_eq!(anon.messages as usize, n * (n - 1));
}
