//! # anonring
//!
//! A complete Rust reproduction of Attiya, Snir & Warmuth, *Computing on
//! an Anonymous Ring* (J. ACM 35(4), 1988): execution models, algorithms,
//! machine-verified lower-bound constructions, and the labelled-ring
//! baselines the paper contrasts against.
//!
//! This facade crate re-exports the four member crates:
//!
//! * [`sim`] — ring simulators: topologies with per-processor
//!   orientations, the synchronous lock-step engine, the asynchronous
//!   engine with adversarial schedulers, neighborhoods and symmetry
//!   indices, space-time traces;
//! * [`words`] — the D0L string machinery behind the synchronous lower
//!   bounds: word homomorphisms, characteristic matrices, and the
//!   repetitive-string constructions at exact and arbitrary ring sizes;
//! * [`core`] — the paper's contribution: every algorithm of §4, the
//!   computability characterization of §3, and the fooling-pair
//!   framework of §5–§7 with all its witnesses;
//! * [`baselines`] — leader election on labelled rings
//!   (Hirschberg–Sinclair, Peterson, Franklin, Chang–Roberts) and
//!   leader-driven input distribution.
//!
//! ## Example
//!
//! ```
//! use anonring::core::algorithms::compute::compute_sync;
//! use anonring::core::functions::Xor;
//! use anonring::sim::RingConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ring = RingConfig::oriented_bits("10110100")?;
//! let outcome = compute_sync(&ring, &Xor)?;
//! assert_eq!(outcome.value(), 0);
//! # Ok(())
//! # }
//! ```
//!
//! See the repository's `README.md`, `DESIGN.md` and `EXPERIMENTS.md` for
//! the full map from paper results to code.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use anonring_baselines as baselines;
pub use anonring_core as core;
pub use anonring_sim as sim;
pub use anonring_words as words;
