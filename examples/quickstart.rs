//! Quickstart: compute functions on an anonymous ring, both
//! asynchronously (§4.1, `n(n−1)` messages) and synchronously
//! (Figure 2, `O(n log n)` messages).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use anonring::core::algorithms::compute::{compute_async, compute_sync};
use anonring::core::functions::{And, Or, RingFunction, Sum, Xor};
use anonring::sim::r#async::RandomScheduler;
use anonring::sim::RingConfig;

fn main() {
    // Eight anonymous processors with one-bit inputs. Nobody has an
    // identifier; everybody runs exactly the same code.
    let config = RingConfig::oriented_bits("10110100").expect("valid ring");
    let n = config.n();
    println!(
        "ring of {n} anonymous processors, inputs {:?}\n",
        config.inputs()
    );

    for f in [&And as &dyn RingFunction, &Or, &Xor, &Sum] {
        // The asynchronous route: full input distribution under an
        // adversarial (here random) message schedule.
        let asynchronous =
            compute_async(&config, f, &mut RandomScheduler::new(42)).expect("engine run");
        // The synchronous route: the Figure 2 label-manufacturing
        // algorithm, exponentially cheaper in messages.
        let synchronous = compute_sync(&config, f).expect("engine run");
        assert_eq!(asynchronous.value(), synchronous.value());
        println!(
            "{:>4} = {}   async: {:>3} msgs / {:>4} bits   sync: {:>3} msgs / {:>4} bits",
            f.name(),
            synchronous.value(),
            asynchronous.messages,
            asynchronous.bits,
            synchronous.messages,
            synchronous.bits,
        );
    }

    println!(
        "\nEvery processor reached the same answer without any identity — \
         the paper's point: on an anonymous ring, exactly the cyclic-shift \
         invariant functions are computable (Theorem 3.4)."
    );
}
