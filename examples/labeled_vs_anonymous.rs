//! Labelled versus anonymous rings: why identifiers are worth
//! `Θ(n / log n)` in messages.
//!
//! With distinct labels, a leader is elected in `O(n log n)` messages and
//! then distributes everything in `2n` more. Anonymously, Corollary 5.2
//! says even computing AND — or the minimum of non-distinct inputs —
//! costs `n(n−1)` messages.
//!
//! ```text
//! cargo run --release --example labeled_vs_anonymous
//! ```

use anonring::baselines::{hirschberg_sinclair, leader_collect, peterson};
use anonring::core::algorithms::async_input_dist;
use anonring::sim::r#async::SynchronizingScheduler;
use anonring::sim::RingConfig;

fn main() {
    println!(
        "{:>6} {:>12} {:>12} {:>14} {:>14}",
        "n", "HS elect", "Peterson", "elect+collect", "anonymous"
    );
    for n in [16usize, 64, 256, 1024] {
        let ids: Vec<u64> = (0..n as u64).map(|i| (i * 48271) % 999983).collect();
        let config = RingConfig::oriented(ids);
        let hs = hirschberg_sinclair::run(&config, &mut SynchronizingScheduler).expect("run");
        let pt = peterson::run(&config, &mut SynchronizingScheduler).expect("run");
        let (_, full, _) = leader_collect::elect_and_distribute(&config).expect("run");

        // The anonymous ring cannot elect anyone (Theorem 3.5 / Angluin):
        // its only universal tool is full input distribution at n(n-1).
        let anonymous = async_input_dist::run(
            &RingConfig::oriented(vec![1u8; n]),
            &mut SynchronizingScheduler,
        )
        .expect("run");

        println!(
            "{:>6} {:>12} {:>12} {:>14} {:>14}",
            n, hs.messages, pt.messages, full, anonymous.messages
        );
    }
    println!(
        "\nThe last column grows quadratically, the others n·log n: the price \
         of anonymity (Corollary 5.2 vs the paper's references [5, 8, 12])."
    );
}
