//! Orientation demo (Figure 4): processors with scrambled senses of
//! "left" and "right" agree on a common direction — always on odd rings,
//! up to a perfect alternation on even ones (Theorem 3.5 forbids more).
//!
//! ```text
//! cargo run --release --example orientation_demo
//! ```

use anonring::core::algorithms::orientation;
use anonring::sim::{Orientation, RingTopology};

fn show(orientations: &[Orientation]) -> String {
    orientations
        .iter()
        .map(|o| match o {
            Orientation::Clockwise => '→',
            Orientation::Counterclockwise => '←',
        })
        .collect()
}

fn demo(bits: &[u8]) {
    let topology = RingTopology::from_bits(bits).expect("valid ring");
    let n = topology.n();
    let report = orientation::run(&topology).expect("engine run");
    let after = topology.with_switched(report.outputs());
    println!("n = {n:>2}  before {}", show(topology.orientations()));
    println!(
        "        after  {}   ({} messages, {} cycles, {})",
        show(after.orientations()),
        report.messages,
        report.cycles,
        if after.is_oriented() {
            "fully oriented"
        } else {
            "alternating (quasi-oriented)"
        }
    );
    assert!(after.is_quasi_oriented());
    if n % 2 == 1 {
        assert!(after.is_oriented(), "odd rings always orient");
    }
    println!();
}

fn main() {
    println!("Figure 4: quasi-orienting rings in O(n log n) one-bit messages\n");
    // An odd ring with a messy mix of directions: must end fully oriented.
    demo(&[1, 0, 0, 1, 1, 0, 1, 0, 0]);
    // An even ring engineered towards the alternating outcome.
    demo(&[1, 0, 1, 0, 1, 1, 0, 0]);
    // Theorem 3.5's nemesis: two mirrored half-rings (even n). No
    // deterministic algorithm can fully orient this one — watch it settle
    // for a legal quasi-orientation instead.
    demo(&[1, 1, 1, 1, 0, 0, 0, 0]);
    println!(
        "Each '→'/'←' is a processor's private idea of \"right\". The \
         algorithm spends O(n log n) single-bit messages; Theorem 5.3 shows \
         an asynchronous solution would need Ω(n²)."
    );
}
