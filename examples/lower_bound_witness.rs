//! Lower-bound witness tour: build the paper's fooling pairs, verify
//! their conditions mechanically, and watch a real algorithm pay the
//! certified price.
//!
//! ```text
//! cargo run --release --example lower_bound_witness [n]
//! ```
//!
//! With an argument, additionally certifies an XOR bound at *that*
//! arbitrary ring size via the §7.1.1 inverse-matrix construction.

use anonring::core::algorithms::compute::{compute_async, compute_sync};
use anonring::core::bounds;
use anonring::core::functions::{And, Xor};
use anonring::core::lower_bounds::witnesses::{
    and_async_pair, xor_sync_pair, xor_sync_pair_arbitrary,
};
use anonring::sim::r#async::SynchronizingScheduler;

fn main() {
    println!("== §5.2.1: asynchronous AND on n = 32 ==");
    let pair = and_async_pair(32);
    pair.verify_structure().expect("conditions 5a/5b hold");
    println!(
        "fooling pair verified: R1 = 1^32, R2 = 1^31·0, alpha = {}, bound Σβ = {}",
        pair.alpha,
        pair.bound()
    );
    let run1 = compute_async(&pair.r1, &And, &mut SynchronizingScheduler).expect("run");
    let run2 = compute_async(&pair.r2, &And, &mut SynchronizingScheduler).expect("run");
    assert!(pair.outputs_disagree(&run1.values, &run2.values));
    println!(
        "measured on R1 under the synchronizing adversary: {} messages (refined bound {})\n",
        run1.messages,
        bounds::and_async_lower_refined(32),
    );

    println!("== §6.3.1: synchronous XOR on n = 3^5 = 243 ==");
    let pair = xor_sync_pair(5);
    pair.verify_structure().expect("conditions 6a/6b hold");
    let n = pair.r1.n() as u64;
    let c1 = compute_sync(&pair.r1, &Xor).expect("run");
    let c2 = compute_sync(&pair.r2, &Xor).expect("run");
    assert!(pair.outputs_disagree(&c1.values, &c2.values));
    println!(
        "twins: processors {} and {} look identical to radius {} yet must answer differently",
        pair.p1, pair.p2, pair.alpha
    );
    println!(
        "paper bound (n/54)ln(n/9) = {:.1}, Theorem 6.2 sum = {:.1}, measured = {}\n",
        bounds::xor_sync_lower(n),
        pair.bound(),
        c1.messages.max(c2.messages),
    );

    if let Some(n) = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<usize>().ok())
    {
        println!("== §7.1.1: XOR at your arbitrary n = {n} ==");
        match xor_sync_pair_arbitrary(n, 8) {
            Ok(pair) => {
                pair.verify_structure()
                    .expect("measured beta always verifies");
                let c1 = compute_sync(&pair.r1, &Xor).expect("run");
                println!(
                    "certified lower bound {:.1}, measured {} messages — \
                     symmetry exists at every ring size, not just powers of 3",
                    pair.bound(),
                    c1.messages,
                );
            }
            Err(e) => println!("construction unavailable: {e}"),
        }
    } else {
        println!("(pass a ring size to certify an arbitrary-n XOR bound, e.g. 1000)");
    }
}
