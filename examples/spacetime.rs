//! Space-time diagrams: *seeing* the paper's arguments.
//!
//! Symmetry means simultaneous sends (whole rows light up at once);
//! synchrony means silence is informative (rows go dark and the
//! computation still advances). This example traces three runs and
//! renders them.
//!
//! ```text
//! cargo run --release --example spacetime
//! ```

use anonring::core::algorithms::orientation::OrientationProc;
use anonring::core::algorithms::sync_and::SyncAnd;
use anonring::core::algorithms::sync_input_dist::SyncInputDist;
use anonring::sim::sync::SyncEngine;
use anonring::sim::{RingConfig, RingTopology};

fn main() {
    // 1. AND with a single zero: two token chains race around the ring
    //    and everyone else halts on silence at cycle floor(n/2).
    println!("== §4.2 AND on 1111111111111011 (the 0 floods both ways) ==\n");
    let inputs: Vec<u8> = (0..16).map(|i| u8::from(i != 13)).collect();
    let config = RingConfig::oriented(inputs);
    let mut engine = SyncEngine::from_config(&config, |_, &b| SyncAnd::new(16, b));
    let (report, trace) = engine.run_traced().expect("engine run");
    println!("{trace}");
    println!("answer everywhere: {}\n", report.outputs()[0]);

    // 2. Figure 2 on a maximally symmetric input: every processor acts in
    //    lockstep with its translates — watch entire rows fire at once,
    //    then a fully silent round triggers the periodicity broadcast.
    println!("== Fig. 2 input distribution on (011)^5 — total symmetry ==\n");
    let config = RingConfig::oriented_bits("011011011011011").expect("valid");
    let mut engine = SyncEngine::from_config(&config, |_, &b| SyncInputDist::new(15, b));
    let (report, trace) = engine.run_traced().expect("engine run");
    println!("{trace}");
    println!(
        "every processor reconstructed the ring; {} messages, {} bits\n",
        report.messages, report.bits
    );

    // 3. Figure 4 orientation: endpoint markers, segment tokens, and the
    //    final parity pass.
    println!("== Fig. 4 orientation of →→←→←←→→←→← ==\n");
    let topology = RingTopology::from_bits(&[1, 1, 0, 1, 0, 0, 1, 1, 0, 1, 0]).expect("valid");
    let procs = (0..11).map(|_| OrientationProc::new(11)).collect();
    let mut engine = SyncEngine::new(topology.clone(), procs).expect("sizes match");
    let (report, trace) = engine.run_traced().expect("engine run");
    println!("{trace}");
    let after = topology.with_switched(report.outputs());
    println!(
        "odd ring fully oriented: {} ({} one/two-bit messages)",
        after.is_oriented(),
        report.messages
    );
}
