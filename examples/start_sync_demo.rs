//! Start synchronization demo (Figure 5 and §4.2.4): processors woken at
//! adversarial times reset their clocks to the same instant.
//!
//! ```text
//! cargo run --release --example start_sync_demo
//! ```

use anonring::core::algorithms::{start_sync, start_sync_bits};
use anonring::sim::{RingTopology, WakeSchedule};
use anonring::words::constructions::start_sync_exact;

fn main() {
    // The paper's own adversary: the wake word sigma0 sigma0 sigma1 sigma1
    // built from h(0)=011, h(1)=100 — maximally symmetric, maximally
    // expensive.
    let witness = start_sync_exact(3);
    let n = witness.n();
    let wake = WakeSchedule::from_word(witness.word.as_slice()).expect("legal schedule");
    println!(
        "n = {n}: adversarial wake word {}…, skew {} cycles",
        &witness.word.to_string()[..32.min(n)],
        wake.max_skew()
    );

    let topology = RingTopology::oriented(n).expect("valid ring");
    let full = start_sync::run(&topology, &wake).expect("engine run");
    assert!(full.halted_simultaneously());
    println!(
        "Figure 5:  all {n} processors halt at global cycle {} — {} messages of {} bits total",
        full.halt_cycles[0], full.messages, full.bits
    );

    let bits = start_sync_bits::run(&topology, &wake).expect("engine run");
    assert!(bits.halted_simultaneously());
    assert_eq!(bits.bits, bits.messages);
    println!(
        "§4.2.4:    all {n} processors halt at global cycle {} — {} messages of 1 bit each",
        bits.halt_cycles[0], bits.messages
    );

    println!(
        "\nThe bit variant encodes each clock value in *time*: a fast token \
         and a half-speed token whose arrival gap equals the distance to \
         the sender. Same O(n log n) message count, O(1) bits per message."
    );
}
